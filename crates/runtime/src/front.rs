//! Concurrent serving front-end: sharded ingestion across worker threads,
//! each owning its own compiled plan replicas, with multi-model routing
//! and a per-model horizon-aware result cache.
//!
//! A compiled [`ExecPlan`] is built from `Rc`-shared weights and is
//! therefore `!Send` — it can never cross a thread boundary. Instead of
//! fighting that, the front-end embraces it: every worker thread runs a
//! caller-supplied [`ShardFactory`] *on the worker thread itself* to
//! compile its own private replica set. Derivation is deterministic
//! (seeded RNG), so replicas are bit-identical across shards; only `Send`
//! request envelopes and raw `f32` tensor buffers ever cross the
//! [`std::sync::mpsc`] channels.
//!
//! Routing is content-deterministic: a request's shard is an FNV-1a hash
//! of its model id, shape, and exact input bit pattern. The same window
//! always lands on the same shard, which makes the per-shard result
//! cache exact — a cached forecast can never be duplicated across shards
//! and a repeat request always finds its entry.
//!
//! Inside each shard the full PR-7 machinery is reused unchanged: one
//! [`crate::MicroBatcher`] per model (admission control, skip-ahead
//! packing, deadline shedding, the solo/tape degradation ladder), plans
//! routed through a [`PlanRegistry`] whose canary gate parity-checks each
//! replica before it serves, and every event counted in
//! `cts_obs::serve` — including per-shard queue-depth gauges.

use crate::admission::AdmissionPolicy;
use crate::batcher::{MicroBatcher, TapeFallback};
use crate::cache::{CacheKey, ForecastCache};
use crate::error::ServeError;
use crate::registry::PlanRegistry;
use crate::ExecPlan;
use cts_obs::serve as counters;
use cts_obs::Stopwatch;
use cts_tensor::Tensor;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Canary probe for one shard replica: the replica must reproduce
/// `reference` on `probe` within `tol` before its shard starts serving
/// it (see [`PlanRegistry::admit`]).
pub struct ShardCanary {
    /// Probe window (`[b, N, T, F]`).
    pub probe: Tensor,
    /// Expected forecast, typically computed once on the tape.
    pub reference: Tensor,
    /// Allowed elementwise divergence.
    pub tol: f32,
}

/// One model a shard serves, as produced by the [`ShardFactory`] on the
/// worker thread that will own it.
pub struct ShardModel {
    /// Model id requests route by.
    pub id: String,
    /// The shard's private plan replica.
    pub plan: Rc<ExecPlan>,
    /// Optional degradation-ladder rung 3 for this replica.
    pub tape_fallback: Option<TapeFallback>,
    /// Optional canary gate; `None` registers the replica un-gated.
    pub canary: Option<ShardCanary>,
}

/// Builds a shard's model replicas *on that shard's thread* (the factory
/// is the per-thread init hook — plan compilation, prewarming, and any
/// thread-local setup happen inside it). Called once per shard with the
/// shard index; must be deterministic in the model ids it returns, since
/// every shard has to serve the same catalogue.
pub type ShardFactory = Arc<dyn Fn(usize) -> Result<Vec<ShardModel>, ServeError> + Send + Sync>;

/// One flushed answer: the request's ticket paired with its forecast or
/// its typed per-request failure.
pub type TicketAnswer = (u64, Result<Tensor, ServeError>);

/// Front-end knobs, applied uniformly to every shard and model.
#[derive(Clone, Copy, Debug)]
pub struct FrontConfig {
    /// Serving worker threads (= shards). Each compiles its own replicas.
    pub threads: usize,
    /// Per-model micro-batch cap (windows per coalesced forward).
    pub max_batch: usize,
    /// Per-model pending-queue bound; excess requests are shed typed.
    pub queue_limit: usize,
    /// Solo re-run retries in the degradation ladder.
    pub retries: usize,
    /// Admission policy applied on the worker before caching/queueing.
    pub admission: AdmissionPolicy,
    /// Per-model result-cache byte cap; `0` disables the cache.
    pub cache_bytes: usize,
}

impl Default for FrontConfig {
    fn default() -> Self {
        Self {
            threads: 1,
            max_batch: 8,
            queue_limit: 1024,
            retries: 1,
            admission: AdmissionPolicy::default(),
            cache_bytes: 0,
        }
    }
}

/// One request crossing the channel to its shard. Everything in here is
/// `Send`: the tensor is a plain buffer, and the stopwatch started at
/// submission so deadline budgets include channel wait time.
struct Envelope {
    ticket: u64,
    model: String,
    x: Tensor,
    deadline_ms: Option<f64>,
    origin: u64,
    queued: Stopwatch,
}

enum WorkerMsg {
    Request(Envelope),
    Flush,
    Shutdown,
}

enum Reply {
    /// Worker finished (or failed) its factory init; sent exactly once.
    Ready {
        shard: usize,
        models: Result<Vec<String>, ServeError>,
    },
    Answer {
        ticket: u64,
        result: Result<Tensor, ServeError>,
    },
    FlushDone,
}

/// Sends a typed init failure if the worker unwinds before reporting
/// ready, so [`ServeFront::new`] never hangs on a panicking factory.
struct ReadyGuard {
    shard: usize,
    reply: Sender<Reply>,
    armed: bool,
}

impl ReadyGuard {
    fn defuse(mut self) {
        self.armed = false;
    }
}

impl Drop for ReadyGuard {
    fn drop(&mut self) {
        if self.armed {
            let _ = self.reply.send(Reply::Ready {
                shard: self.shard,
                models: Err(ServeError::ShardDown {
                    shard: self.shard,
                    cause: "worker initialization panicked".into(),
                }),
            });
        }
    }
}

/// Per-model serving state on one shard.
struct Slot {
    batcher: MicroBatcher,
    cache: Option<ForecastCache>,
    /// `[N, T, F]` the replica was compiled for (admission shape check).
    want: [usize; 3],
    /// Queued requests awaiting flush: `(ticket, cache key, origin)`,
    /// aligned index-for-index with the batcher's pending queue.
    tickets: Vec<(u64, Option<CacheKey>, u64)>,
}

/// One worker thread's serving state.
struct Worker {
    shard: usize,
    registry: PlanRegistry,
    slots: HashMap<String, Slot>,
    /// Sorted model ids — flush order, and the catalogue reported ready.
    ids: Vec<String>,
    admission: AdmissionPolicy,
}

impl Worker {
    /// Run the factory and assemble per-model serving state. Any error —
    /// factory failure, bad config, canary rejection — aborts the whole
    /// shard with a typed error.
    fn build(shard: usize, cfg: &FrontConfig, factory: &ShardFactory) -> Result<Self, ServeError> {
        let models = factory(shard)?;
        if models.is_empty() {
            return Err(ServeError::Config(format!(
                "shard {shard} factory produced no models"
            )));
        }
        let mut registry = PlanRegistry::new();
        let mut slots = HashMap::new();
        for m in models {
            if slots.contains_key(&m.id) {
                return Err(ServeError::Config(format!(
                    "shard {shard} factory produced duplicate model id '{}'",
                    m.id
                )));
            }
            match &m.canary {
                Some(c) => {
                    registry.admit(m.id.clone(), Rc::clone(&m.plan), &c.probe, &c.reference, c.tol)?;
                }
                None => {
                    registry.insert(m.id.clone(), Rc::clone(&m.plan));
                }
            }
            let want = [m.plan.nodes(), m.plan.input_len(), m.plan.features()];
            let cache = (cfg.cache_bytes > 0)
                .then(|| ForecastCache::new(cfg.cache_bytes, m.plan.horizon()));
            let mut batcher = MicroBatcher::new(Rc::clone(&m.plan), cfg.max_batch)?
                .with_queue_limit(cfg.queue_limit)?
                .with_retries(cfg.retries);
            if let Some(fb) = m.tape_fallback {
                batcher = batcher.with_tape_fallback(fb);
            }
            slots.insert(
                m.id,
                Slot {
                    batcher,
                    cache,
                    want,
                    tickets: Vec::new(),
                },
            );
        }
        let mut ids: Vec<String> = slots.keys().cloned().collect();
        ids.sort_unstable();
        Ok(Self {
            shard,
            registry,
            slots,
            ids,
            admission: cfg.admission,
        })
    }

    /// Route one request: registry lookup, admission, cache consult,
    /// queue. Rejections answer immediately; queued requests answer at
    /// the next flush.
    fn handle(&mut self, env: Envelope, reply: &Sender<Reply>) {
        let Envelope {
            ticket,
            model,
            mut x,
            deadline_ms,
            origin,
            queued,
        } = env;
        // Routing precedes admission, so an unknown model is counted on
        // its own — not as a submitted/rejected pair.
        if self.registry.get(&model).is_none() {
            counters::record_unknown_model();
            let _ = reply.send(Reply::Answer {
                ticket,
                result: Err(ServeError::UnknownModel { id: model }),
            });
            return;
        }
        let slot = match self.slots.get_mut(&model) {
            Some(s) => s,
            // Registry and slots are built from the same factory output;
            // treat a mismatch as an unknown model rather than panicking.
            None => {
                counters::record_unknown_model();
                let _ = reply.send(Reply::Answer {
                    ticket,
                    result: Err(ServeError::UnknownModel { id: model }),
                });
                return;
            }
        };
        counters::record_submitted();
        match self.admission.admit(&mut x, slot.want) {
            Ok(report) => {
                if report.masked > 0 {
                    counters::record_masked_window();
                }
            }
            Err(e) => {
                match &e {
                    ServeError::BadShape { .. } => counters::record_rejected_shape(),
                    ServeError::NonFinite { .. } => counters::record_rejected_non_finite(),
                    ServeError::TooMissing { .. } => counters::record_rejected_missing(),
                    _ => {}
                }
                let _ = reply.send(Reply::Answer {
                    ticket,
                    result: Err(e),
                });
                return;
            }
        }
        // Consult the cache on the *sanitized* window, so a masked
        // request and its pre-masked twin share an entry.
        let key = slot.cache.as_ref().map(|_| ForecastCache::key(&x));
        if let (Some(cache), Some(k)) = (slot.cache.as_mut(), key.as_ref()) {
            if let Some(y) = cache.lookup(k, origin) {
                counters::record_admitted();
                let _ = reply.send(Reply::Answer {
                    ticket,
                    result: Ok(y),
                });
                return;
            }
        }
        match slot.batcher.enqueue_presanitized(x, deadline_ms, queued) {
            Ok(()) => slot.tickets.push((ticket, key, origin)),
            Err(e) => {
                let _ = reply.send(Reply::Answer {
                    ticket,
                    result: Err(e),
                });
                return;
            }
        }
        let depth: usize = self.slots.values().map(|s| s.batcher.pending()).sum();
        counters::set_shard_depth(self.shard, depth as u64);
    }

    /// Flush every model's batcher (in sorted-id order for determinism),
    /// populate the cache from fresh forecasts, and answer every queued
    /// ticket, ending with this shard's flush marker.
    fn flush(&mut self, reply: &Sender<Reply>) {
        for id in &self.ids {
            let Some(slot) = self.slots.get_mut(id) else {
                continue;
            };
            let tickets = std::mem::take(&mut slot.tickets);
            let results = slot.batcher.flush();
            for ((ticket, key, origin), result) in tickets.into_iter().zip(results) {
                if let (Ok(y), Some(k)) = (&result, key) {
                    if let Some(cache) = slot.cache.as_mut() {
                        cache.insert(k, y, origin);
                    }
                }
                let _ = reply.send(Reply::Answer { ticket, result });
            }
        }
        counters::set_shard_depth(self.shard, 0);
        let _ = reply.send(Reply::FlushDone);
    }
}

fn worker_main(
    shard: usize,
    cfg: FrontConfig,
    factory: ShardFactory,
    rx: Receiver<WorkerMsg>,
    reply: Sender<Reply>,
) {
    let guard = ReadyGuard {
        shard,
        reply: reply.clone(),
        armed: true,
    };
    let built = Worker::build(shard, &cfg, &factory);
    guard.defuse();
    let mut worker = match built {
        Ok(w) => w,
        Err(e) => {
            let _ = reply.send(Reply::Ready {
                shard,
                models: Err(e),
            });
            return;
        }
    };
    let _ = reply.send(Reply::Ready {
        shard,
        models: Ok(worker.ids.clone()),
    });
    for msg in rx {
        match msg {
            WorkerMsg::Request(env) => worker.handle(env, &reply),
            WorkerMsg::Flush => worker.flush(&reply),
            WorkerMsg::Shutdown => break,
        }
    }
}

/// FNV-1a over a model id and a window's shape + exact bit pattern.
fn route_hash(model: &str, x: &Tensor) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |byte: u8| {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for &b in model.as_bytes() {
        eat(b);
    }
    eat(0); // separator: id "a" + shape [1] != id "a\x01" + shape []
    for &d in x.shape() {
        for b in (d as u64).to_le_bytes() {
            eat(b);
        }
    }
    for &v in x.data() {
        for b in v.to_bits().to_le_bytes() {
            eat(b);
        }
    }
    h
}

/// Sharded, multi-threaded serving front-end.
///
/// Owns `threads` worker threads, each serving its own bit-identical
/// plan replicas behind a [`crate::MicroBatcher`] per model and an
/// optional per-model forecast cache. [`submit`](Self::submit) routes a
/// request to its content-deterministic shard and returns a ticket;
/// [`flush`](Self::flush) runs every shard's pending batch and returns
/// all available answers in ticket order.
///
/// Dropping the front shuts every worker down and joins it.
pub struct ServeFront {
    threads: usize,
    to_shard: Vec<Sender<WorkerMsg>>,
    replies: Receiver<Reply>,
    workers: Vec<JoinHandle<()>>,
    models: Vec<String>,
    next_ticket: u64,
}

impl ServeFront {
    /// Spawn the worker threads and run `factory` on each; returns once
    /// every shard reports ready (or any shard fails, in which case all
    /// workers are torn down and the first failure is returned).
    ///
    /// # Errors
    /// [`ServeError::Config`] for unusable knobs or a factory whose model
    /// catalogue differs between shards; any error the factory, the
    /// canary gate, or batcher construction produced on a shard;
    /// [`ServeError::ShardDown`] when a factory panicked.
    pub fn new(cfg: FrontConfig, factory: ShardFactory) -> Result<Self, ServeError> {
        if cfg.threads == 0 {
            return Err(ServeError::Config("threads must be at least 1".into()));
        }
        if cfg.threads > counters::MAX_SHARDS {
            return Err(ServeError::Config(format!(
                "threads must be at most {} (the shard gauge bound)",
                counters::MAX_SHARDS
            )));
        }
        let (reply_tx, replies) = mpsc::channel();
        let mut to_shard: Vec<Sender<WorkerMsg>> = Vec::with_capacity(cfg.threads);
        let mut workers = Vec::with_capacity(cfg.threads);
        for shard in 0..cfg.threads {
            let (tx, rx) = mpsc::channel();
            let factory = Arc::clone(&factory);
            let reply = reply_tx.clone();
            let spawned = std::thread::Builder::new()
                .name(format!("cts-serve-shard-{shard}"))
                .spawn(move || worker_main(shard, cfg, factory, rx, reply));
            match spawned {
                Ok(handle) => {
                    workers.push(handle);
                    to_shard.push(tx);
                }
                Err(e) => {
                    Self::teardown(&to_shard, workers);
                    return Err(ServeError::Config(format!(
                        "failed to spawn serving shard {shard}: {e}"
                    )));
                }
            }
        }
        // Collect every shard's ready report before accepting traffic.
        let mut catalogues: Vec<Option<Vec<String>>> = (0..cfg.threads).map(|_| None).collect();
        let mut seen = 0;
        while seen < cfg.threads {
            match replies.recv() {
                Ok(Reply::Ready { shard, models }) => {
                    seen += 1;
                    match models {
                        Ok(ids) => {
                            if let Some(entry) = catalogues.get_mut(shard) {
                                *entry = Some(ids);
                            }
                        }
                        Err(e) => {
                            Self::teardown(&to_shard, workers);
                            return Err(e);
                        }
                    }
                }
                // No requests have been submitted yet, so Ready is the
                // only reply a worker can send; ignore anything else.
                Ok(_) => {}
                Err(_) => {
                    Self::teardown(&to_shard, workers);
                    return Err(ServeError::FrontClosed);
                }
            }
        }
        let mut lists = Vec::with_capacity(cfg.threads);
        for (shard, l) in catalogues.into_iter().enumerate() {
            match l {
                Some(ids) => lists.push(ids),
                None => {
                    Self::teardown(&to_shard, workers);
                    return Err(ServeError::Config(format!(
                        "shard {shard} never reported ready"
                    )));
                }
            }
        }
        if lists.iter().any(|l| *l != lists[0]) {
            Self::teardown(&to_shard, workers);
            return Err(ServeError::Config(
                "shard factory is not deterministic: shards disagree on model ids".into(),
            ));
        }
        let models = lists.swap_remove(0);
        Ok(Self {
            threads: cfg.threads,
            to_shard,
            replies,
            workers,
            models,
            next_ticket: 0,
        })
    }

    fn teardown(to_shard: &[Sender<WorkerMsg>], workers: Vec<JoinHandle<()>>) {
        for tx in to_shard {
            let _ = tx.send(WorkerMsg::Shutdown);
        }
        for h in workers {
            let _ = h.join();
        }
    }

    /// Sorted model ids every shard serves.
    pub fn models(&self) -> &[String] {
        &self.models
    }

    /// Number of serving shards.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The shard a `(model, window)` pair deterministically routes to:
    /// an FNV-1a content hash, so identical requests always share a
    /// shard (and therefore a cache).
    pub fn shard_of(&self, model: &str, x: &Tensor) -> usize {
        (route_hash(model, x) % self.threads as u64) as usize
    }

    /// Submit a request for `model` with no deadline at window origin 0.
    ///
    /// # Errors
    /// See [`submit_with`](Self::submit_with).
    pub fn submit(&mut self, model: &str, x: Tensor) -> Result<u64, ServeError> {
        self.submit_with(model, x, None, 0)
    }

    /// Submit a request, returning the ticket its answer will carry.
    /// `deadline_ms` bounds total queueing time (channel wait included);
    /// `origin` is the window's logical position, driving the result
    /// cache's horizon TTL (pass 0 to opt out of TTL expiry).
    ///
    /// Admission and cache verdicts happen on the worker — every
    /// per-request failure arrives as that ticket's answer at the next
    /// [`flush`](Self::flush), not here.
    ///
    /// # Errors
    /// [`ServeError::ShardDown`] when the target shard's channel is gone.
    pub fn submit_with(
        &mut self,
        model: &str,
        x: Tensor,
        deadline_ms: Option<f64>,
        origin: u64,
    ) -> Result<u64, ServeError> {
        let shard = self.shard_of(model, &x);
        let ticket = self.next_ticket;
        self.next_ticket += 1;
        let env = Envelope {
            ticket,
            model: model.to_string(),
            x,
            deadline_ms,
            origin,
            queued: Stopwatch::start(),
        };
        self.to_shard[shard]
            .send(WorkerMsg::Request(env))
            .map_err(|_| ServeError::ShardDown {
                shard,
                cause: "request channel disconnected".into(),
            })?;
        Ok(ticket)
    }

    /// Flush every shard and collect all available answers — queued
    /// forecasts, cache hits, and per-request rejections — sorted by
    /// ticket.
    ///
    /// # Errors
    /// [`ServeError::ShardDown`] when a shard's channel is gone;
    /// [`ServeError::FrontClosed`] when every worker exited before all
    /// flush markers arrived. Per-request failures are *not* errors here:
    /// they are returned as that ticket's `Err` entry.
    pub fn flush(&mut self) -> Result<Vec<TicketAnswer>, ServeError> {
        for (shard, tx) in self.to_shard.iter().enumerate() {
            tx.send(WorkerMsg::Flush).map_err(|_| ServeError::ShardDown {
                shard,
                cause: "request channel disconnected".into(),
            })?;
        }
        let mut answers = Vec::new();
        let mut done = 0;
        while done < self.to_shard.len() {
            match self.replies.recv() {
                Ok(Reply::Answer { ticket, result }) => answers.push((ticket, result)),
                Ok(Reply::FlushDone) => done += 1,
                Ok(Reply::Ready { .. }) => {}
                Err(_) => return Err(ServeError::FrontClosed),
            }
        }
        answers.sort_by_key(|(t, _)| *t);
        Ok(answers)
    }
}

impl Drop for ServeFront {
    fn drop(&mut self) {
        for tx in &self.to_shard {
            let _ = tx.send(WorkerMsg::Shutdown);
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BlockPlan, PlanSpec};
    use cts_graph::SensorGraph;
    use cts_nn::Linear;
    use cts_ops::{build_operator, GraphContext, OpKind, StOperator};
    use cts_tensor::init;
    use rand::{rngs::SmallRng, Rng, SeedableRng};

    fn plan(rng: &mut impl Rng) -> Rc<ExecPlan> {
        let (n, t, f, d) = (3, 4, 2, 4);
        let op: Rc<dyn StOperator> = Rc::from(build_operator(rng, OpKind::Gdcc, "op", d, 2, false));
        Rc::new(
            ExecPlan::compile(PlanSpec {
                embed: Rc::new(Linear::new(rng, "embed", f, d, true)),
                output: Rc::new(Linear::new(rng, "output", t * d, 5, true)),
                ctx: Rc::new(GraphContext::from_graph(&SensorGraph::identity(n), 2)),
                blocks: vec![BlockPlan {
                    m: 2,
                    edges: vec![(0, 1, op)],
                }],
                backbone: vec![0],
                out_scale: 1.0,
                out_shift: 0.0,
                input_len: t,
                d_model: d,
                nodes: n,
                features: f,
            })
            .unwrap(),
        )
    }

    fn factory(seed: u64) -> ShardFactory {
        Arc::new(move |_shard| {
            let mut rng = SmallRng::seed_from_u64(seed);
            Ok(vec![ShardModel {
                id: "m".into(),
                plan: plan(&mut rng),
                tape_fallback: None,
                canary: None,
            }])
        })
    }

    #[test]
    fn config_validation_is_typed() {
        let cfg = FrontConfig {
            threads: 0,
            ..FrontConfig::default()
        };
        assert!(matches!(
            ServeFront::new(cfg, factory(0)),
            Err(ServeError::Config(_))
        ));
        let cfg = FrontConfig {
            threads: counters::MAX_SHARDS + 1,
            ..FrontConfig::default()
        };
        assert!(matches!(
            ServeFront::new(cfg, factory(0)),
            Err(ServeError::Config(_))
        ));
    }

    #[test]
    fn factory_errors_and_disagreement_surface_typed() {
        let failing: ShardFactory =
            Arc::new(|shard| Err(ServeError::Config(format!("shard {shard} refused"))));
        assert!(matches!(
            ServeFront::new(FrontConfig::default(), failing),
            Err(ServeError::Config(msg)) if msg.contains("refused")
        ));
        // Shards disagreeing on the catalogue is a config error.
        let split: ShardFactory = Arc::new(move |shard| {
            let mut rng = SmallRng::seed_from_u64(9);
            Ok(vec![ShardModel {
                id: if shard == 0 { "a".into() } else { "b".into() },
                plan: plan(&mut rng),
                tape_fallback: None,
                canary: None,
            }])
        });
        let cfg = FrontConfig {
            threads: 2,
            ..FrontConfig::default()
        };
        assert!(matches!(
            ServeFront::new(cfg, split),
            Err(ServeError::Config(msg)) if msg.contains("disagree")
        ));
        // A panicking factory still reports typed, without hanging.
        let panicking: ShardFactory = Arc::new(|_| panic!("factory exploded"));
        assert!(matches!(
            ServeFront::new(FrontConfig::default(), panicking),
            Err(ServeError::ShardDown { .. })
        ));
    }

    #[test]
    fn routing_is_deterministic_and_in_range() {
        let cfg = FrontConfig {
            threads: 3,
            ..FrontConfig::default()
        };
        let mut front = ServeFront::new(cfg, factory(1)).unwrap();
        assert_eq!(front.models(), ["m".to_string()]);
        let mut rng = SmallRng::seed_from_u64(2);
        let windows: Vec<Tensor> = (0..16)
            .map(|_| init::uniform(&mut rng, [1, 3, 4, 2], -1.0, 1.0))
            .collect();
        for w in &windows {
            let s = front.shard_of("m", w);
            assert!(s < 3);
            assert_eq!(s, front.shard_of("m", w), "routing not deterministic");
        }
        // Content-based routing actually spreads load.
        let distinct: std::collections::HashSet<usize> =
            windows.iter().map(|w| front.shard_of("m", w)).collect();
        assert!(distinct.len() > 1, "all windows routed to one shard");
        // Different model ids can route the same window differently.
        let _ = front.submit("m", windows[0].clone()).unwrap();
        let out = front.flush().unwrap();
        assert_eq!(out.len(), 1);
        assert!(out[0].1.is_ok());
    }
}
