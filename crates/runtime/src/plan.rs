//! Genotype → flat execution plan compilation and the tape-free interpreter.

use crate::error::ServeError;
use cts_nn::Linear;
use cts_ops::{CostCtx, GraphContext, OpCost, OpKind, ShapeCtx, ShapeIssue, StOperator, Trace};
use cts_tensor::sym::{eval_shape, format_shape, SymDim};
use cts_tensor::{arena, ops, Tensor};
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// One discrete ST-block, described structurally for compilation.
pub struct BlockPlan {
    /// Number of nodes in the block's micro-DAG (`m ≥ 2`).
    pub m: usize,
    /// Edges `(from, to, operator)` with `from < to`, in genotype order —
    /// the interpreter folds same-target edges in exactly this order so the
    /// accumulation sequence matches the tape forward bit for bit.
    pub edges: Vec<(usize, usize, Rc<dyn StOperator>)>,
}

/// Everything needed to compile a derived model into an [`ExecPlan`].
///
/// Layers and the graph context are shared (`Rc`) with the model that owns
/// them and their weights are read **in place** at execution time, so
/// retraining steps between inference calls are picked up without
/// recompiling.
pub struct PlanSpec {
    /// Embedding layer `features → d_model`.
    pub embed: Rc<Linear>,
    /// Output layer `input_len·d_model → Q`.
    pub output: Rc<Linear>,
    /// Shared graph supports / adaptive adjacency.
    pub ctx: Rc<GraphContext>,
    /// The ST-blocks of the backbone, in order.
    pub blocks: Vec<BlockPlan>,
    /// `backbone[i]` = index into the source list (0 = embedding output,
    /// `k > 0` = output of block `k-1`) feeding block `i`.
    pub backbone: Vec<usize>,
    /// Inverse-scaler multiplier applied to the output layer's result.
    pub out_scale: f32,
    /// Inverse-scaler shift applied after `out_scale`.
    pub out_shift: f32,
    /// History window length `T`.
    pub input_len: usize,
    /// Channel width `D`.
    pub d_model: usize,
    /// Node (sensor) count `N`.
    pub nodes: usize,
    /// Input feature count `F`.
    pub features: usize,
}

/// Why a [`PlanSpec`] failed to compile.
#[derive(Debug)]
pub enum PlanError {
    /// A step's input shape was rejected by the operator's shape rule.
    Shape {
        /// Index of the offending step in the flat program.
        step: usize,
        /// The operator kind that rejected its input.
        kind: OpKind,
        /// The shape rule's explanation.
        issue: ShapeIssue,
    },
    /// The two sides of a residual/merge add have different shapes.
    Mismatch {
        /// Index of the offending step in the flat program.
        step: usize,
        /// Rendered shape of the left operand.
        left: String,
        /// Rendered shape of the right operand.
        right: String,
    },
    /// The spec is structurally invalid (bad backbone index, empty block,
    /// node without an incoming edge, layer sized for a different width…).
    Invalid(String),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Shape { step, kind, issue } => {
                write!(f, "step {step} ({kind}): {issue}")
            }
            PlanError::Mismatch { step, left, right } => {
                write!(f, "step {step}: add operands disagree: {left} vs {right}")
            }
            PlanError::Invalid(msg) => write!(f, "invalid plan spec: {msg}"),
        }
    }
}

impl std::error::Error for PlanError {}

/// One record of the flat program. Slots index the plan's workspace.
enum Step {
    /// `dst (+)= op(slot[src])`; `accumulate` folds onto the existing value
    /// exactly like the tape's `acc.add(&y)`.
    Op {
        op: Rc<dyn StOperator>,
        src: usize,
        dst: usize,
        accumulate: bool,
    },
    /// `dst = slot[a] + slot[b]` (block residual / skip merge).
    Add { a: usize, b: usize, dst: usize },
}

/// A compiled, tape-free forward program for one derived architecture.
///
/// Built once by [`ExecPlan::compile`]; [`ExecPlan::try_run`] then executes
/// the flat step list with no graph construction, no `Rc` tape nodes, and —
/// after [`ExecPlan::prewarm`] — no heap allocation: every intermediate
/// cycles through the tensor arena.
pub struct ExecPlan {
    embed: Rc<Linear>,
    output: Rc<Linear>,
    ctx: Rc<GraphContext>,
    steps: Vec<Step>,
    /// Symbolic shape of every slot (`[B, N, T, D]` with `B` free).
    slot_shapes: Vec<Vec<SymDim>>,
    merged_slot: usize,
    out_scale: f32,
    out_shift: f32,
    input_len: usize,
    d_model: usize,
    nodes: usize,
    features: usize,
    /// `input_len · d_model`, overflow-checked once at compile time.
    flat_width: usize,
    /// Reusable workspace: one cell per slot, kept warm across runs so
    /// dropped intermediates recycle straight into the arena.
    slots: RefCell<Vec<Option<Tensor>>>,
}

impl ExecPlan {
    /// Compile a spec into a flat program, statically validating every
    /// intermediate shape through the `OpKind::infer_shape` contract (the
    /// same rules `cts-verify` applies to candidate architectures).
    ///
    /// # Errors
    /// [`PlanError`] when the spec is structurally invalid or any step's
    /// shapes cannot be proven consistent.
    pub fn compile(spec: PlanSpec) -> Result<Self, PlanError> {
        if spec.blocks.is_empty() {
            return Err(PlanError::Invalid("no blocks".into()));
        }
        if spec.backbone.len() != spec.blocks.len() {
            return Err(PlanError::Invalid(format!(
                "backbone length {} != block count {}",
                spec.backbone.len(),
                spec.blocks.len()
            )));
        }
        if spec.embed.d_out() != spec.d_model {
            return Err(PlanError::Invalid(format!(
                "embedding outputs {} channels, model width is {}",
                spec.embed.d_out(),
                spec.d_model
            )));
        }
        let flat_width = spec
            .input_len
            .checked_mul(spec.d_model)
            .ok_or_else(|| {
                PlanError::Invalid(format!(
                    "input_len {} × d_model {} overflows the flattened head width",
                    spec.input_len, spec.d_model
                ))
            })?;
        if spec.output.d_in() != flat_width {
            return Err(PlanError::Invalid(format!(
                "output layer reads {} features, backbone produces {flat_width}",
                spec.output.d_in(),
            )));
        }

        let shape_ctx = ShapeCtx {
            width: spec.d_model,
            graph_nodes: Some(spec.nodes),
        };
        // Every backbone intermediate is [B, N, T, D] with B left symbolic;
        // the per-step checks below prove it rather than assume it.
        let bntd = vec![
            SymDim::Sym("B"),
            SymDim::Const(spec.nodes),
            SymDim::Const(spec.input_len),
            SymDim::Const(spec.d_model),
        ];

        let mut steps: Vec<Step> = Vec::new();
        let mut slot_shapes: Vec<Vec<SymDim>> = vec![bntd]; // slot 0 = z

        // source_slots[k]: 0 = embedding output, k > 0 = block k-1 residual.
        let mut source_slots = vec![0usize];
        let mut block_out_slots = Vec::with_capacity(spec.blocks.len());
        for (i, block) in spec.blocks.iter().enumerate() {
            if block.m < 2 {
                return Err(PlanError::Invalid(format!("block {i}: m = {} < 2", block.m)));
            }
            let src_idx = spec.backbone[i];
            if src_idx >= source_slots.len() {
                return Err(PlanError::Invalid(format!(
                    "block {i}: backbone index {src_idx} refers to a later block"
                )));
            }
            let input_slot = source_slots[src_idx];
            // Node 0 aliases the block input; nodes 1..m get fresh slots.
            let mut node_slots = vec![input_slot];
            for j in 1..block.m {
                let mut first = true;
                let dst = {
                    let s = slot_shapes[input_slot].clone();
                    slot_shapes.push(s);
                    slot_shapes.len() - 1
                };
                for (from, to, op) in &block.edges {
                    if *to != j {
                        continue;
                    }
                    if *from >= node_slots.len() {
                        return Err(PlanError::Invalid(format!(
                            "block {i}: edge {from}→{to} is not a forward edge"
                        )));
                    }
                    let src = node_slots[*from];
                    let out_shape = op
                        .kind()
                        .infer_shape(&slot_shapes[src], &shape_ctx)
                        .map_err(|issue| PlanError::Shape {
                            step: steps.len(),
                            kind: op.kind(),
                            issue,
                        })?;
                    if !first && out_shape != slot_shapes[dst] {
                        return Err(PlanError::Mismatch {
                            step: steps.len(),
                            left: format_shape(&slot_shapes[dst]),
                            right: format_shape(&out_shape),
                        });
                    }
                    slot_shapes[dst] = out_shape;
                    steps.push(Step::Op {
                        op: Rc::clone(op),
                        src,
                        dst,
                        accumulate: !first,
                    });
                    first = false;
                }
                if first {
                    return Err(PlanError::Invalid(format!(
                        "block {i}: node {j} has no incoming edge"
                    )));
                }
                node_slots.push(dst);
            }
            // Block-level residual: out = block(input) + input.
            let out_slot = node_slots[block.m - 1];
            if slot_shapes[out_slot] != slot_shapes[input_slot] {
                return Err(PlanError::Mismatch {
                    step: steps.len(),
                    left: format_shape(&slot_shapes[out_slot]),
                    right: format_shape(&slot_shapes[input_slot]),
                });
            }
            let resid = slot_shapes.len();
            let resid_shape = slot_shapes[out_slot].clone();
            slot_shapes.push(resid_shape);
            steps.push(Step::Add {
                a: out_slot,
                b: input_slot,
                dst: resid,
            });
            source_slots.push(resid);
            block_out_slots.push(resid);
        }

        // Skip-merge: merged = Σ block outputs, folded in block order
        // exactly like the tape forward.
        let mut merged_slot = block_out_slots[0];
        for &next in &block_out_slots[1..] {
            if slot_shapes[next] != slot_shapes[merged_slot] {
                return Err(PlanError::Mismatch {
                    step: steps.len(),
                    left: format_shape(&slot_shapes[merged_slot]),
                    right: format_shape(&slot_shapes[next]),
                });
            }
            let dst = slot_shapes.len();
            let dst_shape = slot_shapes[merged_slot].clone();
            slot_shapes.push(dst_shape);
            steps.push(Step::Add {
                a: merged_slot,
                b: next,
                dst,
            });
            merged_slot = dst;
        }

        let num_slots = slot_shapes.len();
        Ok(Self {
            embed: spec.embed,
            output: spec.output,
            ctx: spec.ctx,
            steps,
            slot_shapes,
            merged_slot,
            out_scale: spec.out_scale,
            out_shift: spec.out_shift,
            input_len: spec.input_len,
            d_model: spec.d_model,
            nodes: spec.nodes,
            features: spec.features,
            flat_width,
            slots: RefCell::new((0..num_slots).map(|_| None).collect()),
        })
    }

    /// Execute the plan on a batch `x` of shape `[B, N, T, F]`, producing
    /// `[B, N, Q]` in the data's original units — bit-identical to the tape
    /// forward of the model the plan was compiled from.
    ///
    /// This is the serving path: shape violations come back as a typed
    /// [`ServeError`] instead of a panic, and the `cts_nn::fault` serving
    /// hooks can make a run fail or poison its output for chaos tests.
    ///
    /// # Errors
    /// [`ServeError::BadShape`] for a non-`[B, N, T, F]` input;
    /// [`ServeError::PlanExec`] when execution aborts (only under an armed
    /// fault plan — real kernels are total functions of finite input).
    pub fn try_run(&self, x: &Tensor) -> Result<Tensor, ServeError> {
        let s = x.shape();
        if s.len() != 4 || s[1..] != [self.nodes, self.input_len, self.features] {
            return Err(ServeError::BadShape {
                got: s.to_vec(),
                want: [self.nodes, self.input_len, self.features],
            });
        }
        let fault = cts_nn::fault::next_plan_run(s[0]);
        if fault == cts_nn::fault::ServeFault::FailRun {
            return Err(ServeError::PlanExec {
                attempts: 1,
                cause: "injected plan-execution fault".into(),
            });
        }
        let mut slots = self.slots.borrow_mut();
        slots[0] = Some(self.embed.forward_eval(x));
        for step in &self.steps {
            match step {
                Step::Op {
                    op,
                    src,
                    dst,
                    accumulate,
                } => {
                    // invariant: compile emits steps in topological order, so
                    // the source slot of every step is already filled.
                    let y = op.forward_eval(slots[*src].as_ref().expect("topological order"), &self.ctx);
                    if *accumulate {
                        // invariant: accumulate is only set after a first
                        // non-accumulating write to the same slot.
                        let acc = slots[*dst].take().expect("first edge wrote the slot");
                        slots[*dst] = Some(ops::add(&acc, &y));
                    } else {
                        slots[*dst] = Some(y);
                    }
                }
                Step::Add { a, b, dst } => {
                    // invariant: compile emits steps in topological order, so
                    // both operand slots are already filled.
                    let left = slots[*a].as_ref().expect("topological order");
                    let right = slots[*b].as_ref().expect("topological order");
                    let sum = ops::add(left, right);
                    slots[*dst] = Some(sum);
                }
            }
        }
        // invariant: merged_slot is the last slot the step list writes.
        let merged = slots[self.merged_slot].as_ref().expect("program writes merged slot");
        // Projection epilogue, mirroring Scaffold::project kernel for kernel:
        // relu → flatten [B,N,T·D] → output linear → inverse-scaler affine.
        let (b, n) = (merged.shape()[0], merged.shape()[1]);
        let flat = ops::relu(merged).reshaped([b, n, self.flat_width]);
        let out = self.output.forward_eval(&flat);
        let mut y = ops::add_scalar(&ops::scale(&out, self.out_scale), self.out_shift);
        if fault == cts_nn::fault::ServeFault::NanOutput {
            if let Some(v) = y.data_mut().first_mut() {
                *v = f32::NAN;
            }
        }
        Ok(y)
    }

    /// Prime the tensor arena for batch size `batch` so subsequent
    /// [`try_run`] calls allocate nothing: seeds the arena with every
    /// slot-sized buffer, then performs two warm-up forwards to let
    /// op-internal scratch (attention score matrices, RNN state) reach
    /// steady state.
    ///
    /// [`try_run`]: Self::try_run
    pub fn prewarm(&self, batch: usize) {
        let lens: Vec<usize> = self
            .slot_shapes
            .iter()
            .filter_map(|s| eval_shape(s, &[("B", batch)]))
            .map(|dims| dims.iter().product())
            .collect();
        arena::prewarm(&lens);
        let x = Tensor::zeros([batch, self.nodes, self.input_len, self.features]);
        // The input is built to the plan's own dims, so warm-up runs can
        // only fail under an armed fault plan; ignore those.
        let _ = self.try_run(&x);
        let _ = self.try_run(&x);
    }

    /// Price one `try_run` at batch size `batch` without executing it,
    /// walking the compiled step list through the per-op `OpKind::cost`
    /// contract (embedding and projection epilogue included).
    ///
    /// The `flops`/`bytes`/`kernel_calls` fields are exact against the
    /// instrumented kernel meter for the same batch; `scratch_bytes` is an
    /// arena-aligned upper bound. Pure metadata — no tensors touched.
    pub fn static_cost(&self, batch: usize) -> OpCost {
        let cctx = CostCtx {
            batch,
            nodes: self.nodes,
            width: self.d_model,
            graph_nodes: Some(self.nodes),
            gcn_k: self.ctx.k(),
            adaptive: self.ctx.has_adaptive(),
            adaptive_emb: self.ctx.adaptive_emb_dim().unwrap_or(0),
        };
        let l_elems = [batch, self.nodes, self.input_len, self.d_model]
            .iter()
            .fold(1u64, |acc, &d| acc.saturating_mul(d as u64));
        let rows = (batch as u64)
            .saturating_mul(self.nodes as u64)
            .saturating_mul(self.input_len as u64);

        // Embedding: Linear(features → d_model) over B·N·T positions.
        let mut embed = Trace::new();
        embed.linear(rows, self.features as u64, self.d_model as u64, true);
        let mut total = embed.finish();
        total.param_count = (self.features as u64)
            .saturating_mul(self.d_model as u64)
            .saturating_add(self.d_model as u64);

        for step in &self.steps {
            match step {
                Step::Op {
                    op,
                    src,
                    accumulate,
                    ..
                } => {
                    let c = op
                        .kind()
                        // invariant: compile ran infer_shape on this exact slot list
                        .cost(&self.slot_shapes[*src], &cctx)
                        .expect("compile validated every step shape");
                    total = total.saturating_add(&c);
                    if *accumulate {
                        let mut fold = Trace::new();
                        fold.zip_same(l_elems);
                        total = total.saturating_add(&fold.finish());
                    }
                }
                Step::Add { .. } => {
                    let mut add = Trace::new();
                    add.zip_same(l_elems);
                    total = total.saturating_add(&add.finish());
                }
            }
        }

        // Projection epilogue: relu → flatten (free) → output → affine.
        let bn = (batch as u64).saturating_mul(self.nodes as u64);
        let q = self.output.d_out() as u64;
        let bnq = bn.saturating_mul(q);
        let mut epi = Trace::new();
        epi.unary(l_elems); // relu
        epi.linear(bn, self.flat_width as u64, q, true);
        epi.unary(bnq); // scale
        epi.unary(bnq); // add_scalar
        let mut epi_cost = epi.finish();
        epi_cost.param_count = (self.flat_width as u64).saturating_mul(q).saturating_add(q);
        total.saturating_add(&epi_cost)
    }

    /// Number of records in the flat program (diagnostics / reports).
    pub fn num_steps(&self) -> usize {
        self.steps.len()
    }

    /// Number of workspace slots (diagnostics / reports).
    pub fn num_slots(&self) -> usize {
        self.slot_shapes.len()
    }

    /// Node (sensor) count the plan was compiled for.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// History window length the plan was compiled for.
    pub fn input_len(&self) -> usize {
        self.input_len
    }

    /// Input feature count the plan was compiled for.
    pub fn features(&self) -> usize {
        self.features
    }

    /// Forecast horizon `Q` (steps ahead per forecast) the plan was
    /// compiled for — the output layer's width, and the natural TTL for a
    /// cached forecast: once the window origin advances `Q` steps, the
    /// cached forecast lies entirely in the past.
    pub fn horizon(&self) -> usize {
        self.output.d_out()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cts_graph::SensorGraph;
    use cts_ops::build_operator;
    use cts_tensor::init;
    use rand::{rngs::SmallRng, Rng, SeedableRng};

    fn tiny_spec(rng: &mut impl Rng, kind: OpKind) -> PlanSpec {
        let d = 4;
        let (n, t, f) = (3, 5, 2);
        let ctx = Rc::new(GraphContext::from_graph(&SensorGraph::identity(n), 2));
        let op: Rc<dyn StOperator> = Rc::from(build_operator(rng, kind, "op", d, 2, false));
        let id: Rc<dyn StOperator> = Rc::from(build_operator(rng, OpKind::Identity, "id", d, 2, false));
        PlanSpec {
            embed: Rc::new(Linear::new(rng, "embed", f, d, true)),
            output: Rc::new(Linear::new(rng, "output", t * d, 6, true)),
            ctx,
            blocks: vec![BlockPlan {
                m: 3,
                edges: vec![(0, 1, op), (1, 2, id)],
            }],
            backbone: vec![0],
            out_scale: 2.0,
            out_shift: 1.0,
            input_len: t,
            d_model: d,
            nodes: n,
            features: f,
        }
    }

    #[test]
    fn compiles_and_runs_with_expected_shape() {
        let mut rng = SmallRng::seed_from_u64(0);
        let plan = ExecPlan::compile(tiny_spec(&mut rng, OpKind::Gdcc)).unwrap();
        assert_eq!(plan.num_steps(), 3); // two edges + residual
        let x = init::uniform(&mut rng, [2, 3, 5, 2], -1.0, 1.0);
        let y = plan.try_run(&x).unwrap();
        assert_eq!(y.shape(), &[2, 3, 6]);
        // Deterministic: same input, same bits.
        let y2 = plan.try_run(&x).unwrap();
        assert!(y.approx_eq(&y2, 0.0));
    }

    #[test]
    fn run_is_batch_size_polymorphic() {
        let mut rng = SmallRng::seed_from_u64(1);
        let plan = ExecPlan::compile(tiny_spec(&mut rng, OpKind::Dgcn)).unwrap();
        for b in [1usize, 2, 7] {
            let x = init::uniform(&mut rng, [b, 3, 5, 2], -1.0, 1.0);
            assert_eq!(plan.try_run(&x).unwrap().shape(), &[b, 3, 6]);
        }
    }

    #[test]
    fn bad_input_shape_is_a_typed_error_not_a_panic() {
        let mut rng = SmallRng::seed_from_u64(6);
        let plan = ExecPlan::compile(tiny_spec(&mut rng, OpKind::Gdcc)).unwrap();
        let wrong_rank = Tensor::zeros([3, 5, 2]);
        assert!(matches!(
            plan.try_run(&wrong_rank),
            Err(ServeError::BadShape { .. })
        ));
        let wrong_dims = Tensor::zeros([1, 3, 7, 2]);
        let err = plan.try_run(&wrong_dims).unwrap_err();
        assert!(err.to_string().contains("[B, 3, 5, 2]"), "{err}");
    }

    #[test]
    fn fault_hooks_fail_or_poison_a_run() {
        use cts_nn::fault;
        let mut rng = SmallRng::seed_from_u64(7);
        let plan = ExecPlan::compile(tiny_spec(&mut rng, OpKind::Gdcc)).unwrap();
        let x = init::uniform(&mut rng, [1, 3, 5, 2], -1.0, 1.0);
        fault::arm(fault::FaultPlan {
            fail_plan_run_at: Some(0),
            nan_output_at_run: Some(1),
            ..fault::FaultPlan::default()
        });
        assert!(matches!(
            plan.try_run(&x),
            Err(ServeError::PlanExec { .. })
        ));
        let poisoned = plan.try_run(&x).unwrap();
        assert!(poisoned.data()[0].is_nan(), "output not poisoned");
        let clean = plan.try_run(&x).unwrap();
        assert!(!clean.has_non_finite(), "fault was not one-shot");
        fault::disarm();
    }

    #[test]
    fn rejects_node_without_incoming_edge() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut spec = tiny_spec(&mut rng, OpKind::Identity);
        spec.blocks[0].edges.remove(1); // node 2 now orphaned
        let err = ExecPlan::compile(spec).err().unwrap();
        assert!(matches!(err, PlanError::Invalid(_)), "{err}");
    }

    #[test]
    fn rejects_backbone_index_into_future() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut spec = tiny_spec(&mut rng, OpKind::Identity);
        spec.backbone = vec![1];
        assert!(matches!(
            ExecPlan::compile(spec),
            Err(PlanError::Invalid(_))
        ));
    }

    #[test]
    fn rejects_width_mismatch_via_shape_rule() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut spec = tiny_spec(&mut rng, OpKind::Gdcc);
        // An operator built for a different width than the plan's d_model.
        let wrong: Rc<dyn StOperator> = Rc::from(build_operator(&mut rng, OpKind::Gdcc, "w", 8, 2, false));
        spec.blocks[0].edges[0].2 = wrong;
        // The shape rule checks the declared kind against the plan width; a
        // width-8 GDCC inside a width-4 plan still infers fine (kind-level
        // metadata), but an embed/output mismatch is caught structurally.
        spec.d_model = 8;
        let err = ExecPlan::compile(spec).err().unwrap();
        assert!(matches!(err, PlanError::Invalid(_)), "{err}");
    }

    /// The static price of a compiled plan must equal, bit for bit, what
    /// the instrumented kernel meter observes during one `try_run` —
    /// embedding, every edge (including accumulate folds and zero edges),
    /// residual/merge adds, and the projection epilogue.
    #[test]
    fn static_cost_matches_metered_run_exactly() {
        use cts_tensor::meter;
        let mut rng = SmallRng::seed_from_u64(11);
        let d = 4;
        let (n, t, f) = (3, 5, 2);
        let ctx = Rc::new(GraphContext::from_graph(&SensorGraph::identity(n), 2));
        let mk = |rng: &mut SmallRng, kind: OpKind, name: &str| -> Rc<dyn StOperator> {
            Rc::from(build_operator(rng, kind, name, d, 2, false))
        };
        // Two blocks (merge add), node 2 of block 0 fed by two edges
        // (accumulate fold), plus a compiled zero edge.
        let spec = PlanSpec {
            embed: Rc::new(Linear::new(&mut rng, "embed", f, d, true)),
            output: Rc::new(Linear::new(&mut rng, "output", t * d, 6, true)),
            ctx,
            blocks: vec![
                BlockPlan {
                    m: 3,
                    edges: vec![
                        (0, 1, mk(&mut rng, OpKind::Gdcc, "g")),
                        (0, 2, mk(&mut rng, OpKind::Zero, "z")),
                        (1, 2, mk(&mut rng, OpKind::InformerT, "a")),
                    ],
                },
                BlockPlan {
                    m: 2,
                    edges: vec![(0, 1, mk(&mut rng, OpKind::Dgcn, "s"))],
                },
            ],
            backbone: vec![0, 1],
            out_scale: 2.0,
            out_shift: 1.0,
            input_len: t,
            d_model: d,
            nodes: n,
            features: f,
        };
        let plan = ExecPlan::compile(spec).unwrap();
        for batch in [1usize, 3] {
            let x = init::uniform(&mut rng, [batch, n, t, f], -1.0, 1.0);
            meter::set_enabled(true);
            meter::reset();
            let _ = plan.try_run(&x).unwrap();
            let got = meter::snapshot();
            meter::set_enabled(false);
            let want = plan.static_cost(batch);
            assert_eq!(want.flops, got.flops, "batch {batch}: flops");
            assert_eq!(want.bytes_read, got.bytes_read(), "batch {batch}: reads");
            assert_eq!(want.bytes_written, got.bytes_written(), "batch {batch}: writes");
            assert_eq!(want.kernel_calls, got.kernel_calls, "batch {batch}: calls");
            assert!(want.dense_flops > 0 && want.dense_flops <= want.flops);
            assert!(want.param_count > 0);
        }
    }

    #[test]
    fn prewarm_then_run_reuses_arena() {
        let mut rng = SmallRng::seed_from_u64(5);
        let plan = ExecPlan::compile(tiny_spec(&mut rng, OpKind::Gdcc)).unwrap();
        plan.prewarm(2);
        arena::reset_stats();
        let x = init::uniform(&mut rng, [2, 3, 5, 2], -1.0, 1.0);
        let _ = plan.try_run(&x).unwrap();
        assert_eq!(arena::stats().misses, 0, "steady-state run hit the allocator");
    }
}
