//! `cts-runtime`: compiled, tape-free inference plans for derived models.
//!
//! The tape (`cts-autograd`) exists to record a backward pass; at inference
//! time it is pure overhead — every forward allocates `Rc` nodes, clones
//! parameter tensors onto the tape, and rebuilds the graph from scratch.
//! This crate compiles a derived architecture once into an [`ExecPlan`]: a
//! topologically ordered flat list of op records whose intermediate buffer
//! shapes are pre-computed symbolically (via the same `OpKind::infer_shape`
//! contract `cts-verify` uses), then executed as a plain loop that calls the
//! tensor kernels directly. After [`ExecPlan::prewarm`], a steady-state
//! forward performs **zero** heap allocations (all buffers cycle through the
//! tensor arena) and is bit-identical to the tape forward by construction:
//! each op's `forward_eval` invokes the same kernels in the same order as
//! its tape `forward`, reading weights in place so retraining updates flow
//! through without recompilation.
//!
//! On top of the plan sit the serving pieces: a [`PlanRegistry`] keyed by
//! model id (with a canary gate that parity-checks new plans against a
//! tape reference before admission) and a [`MicroBatcher`] that coalesces
//! concurrent sensor streams into one batched forward behind admission
//! control, bounded queues, and a degradation ladder. [`ServeFront`]
//! scales that to many threads: sharded worker threads each compile their
//! own plan replicas (plans are `Rc`-based and `!Send`; only request
//! envelopes cross channels), route requests content-deterministically,
//! and answer repeats bit-identically from a per-model [`ForecastCache`]
//! with a horizon-aware TTL. The whole request path is panic-free: every
//! failure is a typed [`ServeError`], and every shed/quarantine/degrade/
//! cache event is counted through `cts-obs`.
//!
//! This crate deliberately does **not** depend on `cts-autograd`; the lint
//! suite rejects any `Tape` import here so the tape-free property is
//! structural, not aspirational.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod admission;
mod batcher;
mod cache;
mod error;
mod front;
mod plan;
mod registry;

pub use admission::{AdmissionPolicy, AdmissionReport};
pub use batcher::{MicroBatcher, TapeFallback};
pub use cache::{CacheKey, ForecastCache};
pub use error::ServeError;
pub use front::{FrontConfig, ServeFront, ShardCanary, ShardFactory, ShardModel, TicketAnswer};
pub use plan::{BlockPlan, ExecPlan, PlanError, PlanSpec};
pub use registry::PlanRegistry;

#[cfg(test)]
pub(crate) mod testlock {
    //! The serve counters are process-global; unit tests in this crate
    //! run in parallel threads of one binary, so every test that resets
    //! or asserts counter values serializes through this gate.
    use std::sync::{Mutex, MutexGuard, PoisonError};

    static COUNTER_GATE: Mutex<()> = Mutex::new(());

    pub fn counters() -> MutexGuard<'static, ()> {
        COUNTER_GATE.lock().unwrap_or_else(PoisonError::into_inner)
    }
}
