//! Request micro-batching: coalesce concurrent sensor-stream requests into
//! one batched forward through a compiled plan.

use crate::ExecPlan;
use cts_tensor::{ops, Tensor};
use std::rc::Rc;

/// Coalesces pending forecast requests into batched [`ExecPlan::run`]
/// calls.
///
/// Each submitted request is a window batch `[b_i, N, T, F]` (typically
/// `b_i = 1`: one live stream). [`flush`] greedily packs consecutive
/// requests up to `max_batch` windows, runs each pack as a single forward,
/// and slices the batched output back into per-request tensors in
/// submission order. Row-independence of the forward (all mixing happens
/// within a window) makes a coalesced answer identical to a solo one.
///
/// [`flush`]: Self::flush
pub struct MicroBatcher {
    plan: Rc<ExecPlan>,
    max_batch: usize,
    pending: Vec<Tensor>,
}

impl MicroBatcher {
    /// Batcher over `plan` packing at most `max_batch` windows per forward.
    pub fn new(plan: Rc<ExecPlan>, max_batch: usize) -> Self {
        assert!(max_batch >= 1, "max_batch must be at least 1");
        Self {
            plan,
            max_batch,
            pending: Vec::new(),
        }
    }

    /// Queue one request (`[b_i, N, T, F]`).
    pub fn submit(&mut self, x: Tensor) {
        assert_eq!(
            x.shape()[1..],
            [self.plan.nodes(), self.plan.input_len(), self.plan.features()],
            "request shape does not match the compiled plan"
        );
        self.pending.push(x);
    }

    /// Number of queued requests.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Run every queued request, coalescing consecutive ones into batched
    /// forwards, and return the per-request forecasts (`[b_i, N, Q]`) in
    /// submission order.
    pub fn flush(&mut self) -> Vec<Tensor> {
        let requests = std::mem::take(&mut self.pending);
        let mut out = Vec::with_capacity(requests.len());
        let mut start = 0;
        while start < requests.len() {
            let mut end = start + 1;
            let mut total = requests[start].shape()[0];
            while end < requests.len() && total + requests[end].shape()[0] <= self.max_batch {
                total += requests[end].shape()[0];
                end += 1;
            }
            let y = if end - start == 1 {
                self.plan.run(&requests[start])
            } else {
                let group: Vec<&Tensor> = requests[start..end].iter().collect();
                self.plan.run(&ops::concat(&group, 0))
            };
            let mut off = 0;
            for r in &requests[start..end] {
                let b = r.shape()[0];
                out.push(ops::slice(&y, 0, off, off + b));
                off += b;
            }
            start = end;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BlockPlan, PlanSpec};
    use cts_graph::SensorGraph;
    use cts_nn::Linear;
    use cts_ops::{build_operator, GraphContext, OpKind, StOperator};
    use cts_tensor::init;
    use rand::{rngs::SmallRng, Rng, SeedableRng};

    fn plan(rng: &mut impl Rng) -> Rc<ExecPlan> {
        let (n, t, f, d) = (3, 4, 2, 4);
        let op: Rc<dyn StOperator> = Rc::from(build_operator(rng, OpKind::Gdcc, "op", d, 2, false));
        Rc::new(
            ExecPlan::compile(PlanSpec {
                embed: Rc::new(Linear::new(rng, "embed", f, d, true)),
                output: Rc::new(Linear::new(rng, "output", t * d, 5, true)),
                ctx: Rc::new(GraphContext::from_graph(&SensorGraph::identity(n), 2)),
                blocks: vec![BlockPlan {
                    m: 2,
                    edges: vec![(0, 1, op)],
                }],
                backbone: vec![0],
                out_scale: 1.0,
                out_shift: 0.0,
                input_len: t,
                d_model: d,
                nodes: n,
                features: f,
            })
            .unwrap(),
        )
    }

    #[test]
    fn coalesced_results_match_solo_runs() {
        let mut rng = SmallRng::seed_from_u64(0);
        let plan = plan(&mut rng);
        let requests: Vec<Tensor> = (0..5)
            .map(|_| init::uniform(&mut rng, [1, 3, 4, 2], -1.0, 1.0))
            .collect();
        let mut batcher = MicroBatcher::new(Rc::clone(&plan), 4);
        for r in &requests {
            batcher.submit(r.clone());
        }
        assert_eq!(batcher.pending(), 5);
        let coalesced = batcher.flush();
        assert_eq!(batcher.pending(), 0);
        assert_eq!(coalesced.len(), 5);
        for (r, y) in requests.iter().zip(&coalesced) {
            let solo = plan.run(r);
            assert_eq!(y.shape(), &[1, 3, 5]);
            assert!(solo.approx_eq(y, 1e-6), "coalesced forecast drifted");
        }
    }

    #[test]
    fn respects_max_batch_and_order() {
        let mut rng = SmallRng::seed_from_u64(1);
        let plan = plan(&mut rng);
        let mut batcher = MicroBatcher::new(plan, 2);
        let a = init::uniform(&mut rng, [2, 3, 4, 2], -1.0, 1.0);
        let b = init::uniform(&mut rng, [1, 3, 4, 2], -1.0, 1.0);
        batcher.submit(a);
        batcher.submit(b);
        let out = batcher.flush();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].shape(), &[2, 3, 5]);
        assert_eq!(out[1].shape(), &[1, 3, 5]);
    }
}
