//! Request micro-batching: coalesce concurrent sensor-stream requests into
//! one batched forward through a compiled plan — with admission control,
//! load shedding, batch isolation, and a degradation ladder so one hostile
//! or unlucky request can never take its coalesced neighbours down.

use crate::admission::AdmissionPolicy;
use crate::error::ServeError;
use crate::ExecPlan;
use cts_obs::serve as counters;
use cts_obs::Stopwatch;
use cts_tensor::{ops, Tensor};
use std::rc::Rc;

/// Answer a request by re-running it through the tape when the compiled
/// plan cannot (ladder rung 3). Injected as a closure because this crate
/// is structurally tape-free — the caller owns the tape.
pub type TapeFallback = Box<dyn Fn(&Tensor) -> Option<Tensor>>;

/// One admitted request waiting for the next flush.
struct Pending {
    x: Tensor,
    /// Deadline budget in milliseconds; a negative budget is already
    /// expired (the deterministic knob chaos tests use).
    deadline_ms: Option<f64>,
    queued: Stopwatch,
}

/// Coalesces pending forecast requests into batched [`ExecPlan::try_run`]
/// calls.
///
/// Each submitted request is a window batch `[b_i, N, T, F]` (typically
/// `b_i = 1`: one live stream). Admission control rejects hostile inputs
/// at [`submit`]; [`flush`] sheds expired requests, greedily packs the
/// rest up to `max_batch` windows per forward — scanning past requests
/// that don't fit so a large request never strands later small ones into
/// singleton batches, and splitting oversize requests into sub-batches —
/// and slices each batched output back into per-request tensors in
/// submission order. Row-independence of the
/// forward (all mixing happens within a window) makes a coalesced answer
/// bit-identical to a solo one.
///
/// When a batch fails or produces a non-finite slice, only the affected
/// requests walk the degradation ladder — solo re-runs with bounded
/// retry/backoff, then the injected tape fallback, then a typed error —
/// while their batch neighbours keep their answers.
///
/// [`submit`]: Self::submit
/// [`flush`]: Self::flush
pub struct MicroBatcher {
    plan: Rc<ExecPlan>,
    max_batch: usize,
    queue_limit: usize,
    retries: usize,
    admission: AdmissionPolicy,
    tape_fallback: Option<TapeFallback>,
    pending: Vec<Pending>,
}

impl MicroBatcher {
    /// Batcher over `plan` packing at most `max_batch` windows per forward.
    ///
    /// Defaults: queue bound 1024, one solo retry, admission policy that
    /// only checks shape, no tape fallback.
    ///
    /// # Errors
    /// [`ServeError::Config`] when `max_batch` is zero.
    pub fn new(plan: Rc<ExecPlan>, max_batch: usize) -> Result<Self, ServeError> {
        if max_batch == 0 {
            return Err(ServeError::Config("max_batch must be at least 1".into()));
        }
        Ok(Self {
            plan,
            max_batch,
            queue_limit: 1024,
            retries: 1,
            admission: AdmissionPolicy::default(),
            tape_fallback: None,
            pending: Vec::new(),
        })
    }

    /// Bound the pending queue; requests past the bound are shed at
    /// submit with [`ServeError::QueueFull`].
    ///
    /// # Errors
    /// [`ServeError::Config`] when `limit` is zero.
    pub fn with_queue_limit(mut self, limit: usize) -> Result<Self, ServeError> {
        if limit == 0 {
            return Err(ServeError::Config("queue limit must be at least 1".into()));
        }
        self.queue_limit = limit;
        Ok(self)
    }

    /// Replace the admission policy.
    pub fn with_admission(mut self, policy: AdmissionPolicy) -> Self {
        self.admission = policy;
        self
    }

    /// Number of solo re-run retries (beyond the first solo attempt) a
    /// quarantined request gets before falling through to the tape.
    pub fn with_retries(mut self, retries: usize) -> Self {
        self.retries = retries;
        self
    }

    /// Install the tape fallback (degradation ladder rung 3).
    pub fn with_tape_fallback(mut self, fallback: TapeFallback) -> Self {
        self.tape_fallback = Some(fallback);
        self
    }

    /// Queue one request (`[b_i, N, T, F]`) with no deadline.
    ///
    /// # Errors
    /// See [`submit_with_deadline`](Self::submit_with_deadline).
    pub fn submit(&mut self, x: Tensor) -> Result<(), ServeError> {
        self.submit_with_deadline(x, None)
    }

    /// Queue one request carrying a deadline budget in milliseconds: if it
    /// is still queued `deadline_ms` after submission, the next flush
    /// sheds it instead of running it. A negative budget is treated as
    /// already expired (deterministic shedding for tests).
    ///
    /// # Errors
    /// [`ServeError::QueueFull`] when the pending queue is at its bound;
    /// [`ServeError::BadShape`] / [`ServeError::NonFinite`] /
    /// [`ServeError::TooMissing`] from admission control.
    pub fn submit_with_deadline(
        &mut self,
        mut x: Tensor,
        deadline_ms: Option<f64>,
    ) -> Result<(), ServeError> {
        counters::record_submitted();
        if self.pending.len() >= self.queue_limit {
            counters::record_queue_shed();
            return Err(ServeError::QueueFull {
                limit: self.queue_limit,
            });
        }
        let want = [
            self.plan.nodes(),
            self.plan.input_len(),
            self.plan.features(),
        ];
        let report = self.admission.admit(&mut x, want).inspect_err(|e| match e {
            ServeError::BadShape { .. } => counters::record_rejected_shape(),
            ServeError::NonFinite { .. } => counters::record_rejected_non_finite(),
            ServeError::TooMissing { .. } => counters::record_rejected_missing(),
            _ => {}
        })?;
        if report.masked > 0 {
            counters::record_masked_window();
        }
        counters::record_admitted();
        self.pending.push(Pending {
            x,
            deadline_ms,
            queued: Stopwatch::start(),
        });
        Ok(())
    }

    /// Front-end enqueue path: queue a request whose admission (and
    /// `submitted` counter bump) the caller already performed — the
    /// serving front runs admission itself so it can consult the result
    /// cache on the *sanitized* window before deciding to queue at all.
    ///
    /// `queued` carries the stopwatch started at front-end submission, so
    /// deadline budgets include time spent in the shard channel.
    ///
    /// # Errors
    /// [`ServeError::QueueFull`] when the pending queue is at its bound.
    pub(crate) fn enqueue_presanitized(
        &mut self,
        x: Tensor,
        deadline_ms: Option<f64>,
        queued: Stopwatch,
    ) -> Result<(), ServeError> {
        if self.pending.len() >= self.queue_limit {
            counters::record_queue_shed();
            return Err(ServeError::QueueFull {
                limit: self.queue_limit,
            });
        }
        counters::record_admitted();
        self.pending.push(Pending {
            x,
            deadline_ms,
            queued,
        });
        Ok(())
    }

    /// Number of queued requests.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// `Some(error)` when `p`'s deadline budget is already spent.
    fn expired(p: &Pending) -> Option<ServeError> {
        let deadline = p.deadline_ms?;
        let waited_ms = p.queued.elapsed_ms();
        if deadline < 0.0 || waited_ms > deadline {
            counters::record_deadline_shed();
            Some(ServeError::DeadlineExpired {
                waited_ms,
                deadline_ms: deadline,
            })
        } else {
            None
        }
    }

    /// Run every queued request and return one `Result` per request, in
    /// submission order: the forecast (`[b_i, N, Q]`), or the typed error
    /// that request — and only that request — hit.
    ///
    /// Deadlines are checked twice: once up front (rung 0) and again
    /// immediately before each group executes, so a request that waited
    /// behind slow earlier groups in the same flush is shed instead of
    /// returning a forecast after its budget.
    pub fn flush(&mut self) -> Vec<Result<Tensor, ServeError>> {
        let requests = std::mem::take(&mut self.pending);
        let mut out: Vec<Option<Result<Tensor, ServeError>>> =
            requests.iter().map(|_| None).collect();

        // Rung 0: shed what already missed its deadline — running it
        // would only steal capacity from requests that can still answer
        // in time.
        let mut live: Vec<(usize, Pending)> = Vec::with_capacity(requests.len());
        for (i, p) in requests.into_iter().enumerate() {
            if let Some(e) = Self::expired(&p) {
                out[i] = Some(Err(e));
                continue;
            }
            live.push((i, p));
        }

        // Greedy skip-ahead packing: each unpacked request seeds a group,
        // then every *later* unpacked request that still fits joins it —
        // a large request no longer strands the small ones behind it into
        // singleton batches. Group members stay in submission order, so
        // the concat (and therefore the answer bits) is deterministic.
        let mut used = vec![false; live.len()];
        for seed in 0..live.len() {
            if used[seed] {
                continue;
            }
            used[seed] = true;
            let b0 = live[seed].1.x.shape()[0];
            if b0 > self.max_batch {
                let (i, p) = &live[seed];
                // Re-check the deadline immediately before executing:
                // earlier groups in this same flush may have eaten the
                // budget.
                out[*i] = Some(match Self::expired(p) {
                    Some(e) => Err(e),
                    None => {
                        counters::record_oversize_split();
                        self.run_oversize(&p.x)
                    }
                });
                continue;
            }
            let mut members = vec![seed];
            let mut total = b0;
            for later in seed + 1..live.len() {
                if used[later] {
                    continue;
                }
                let b = live[later].1.x.shape()[0];
                if total + b <= self.max_batch {
                    used[later] = true;
                    members.push(later);
                    total += b;
                }
            }
            // Deadline re-check at execution time (see above); survivors
            // run as one coalesced group.
            let mut group: Vec<&(usize, Pending)> = Vec::with_capacity(members.len());
            for &m in &members {
                let (i, p) = &live[m];
                match Self::expired(p) {
                    Some(e) => out[*i] = Some(Err(e)),
                    None => group.push(&live[m]),
                }
            }
            if !group.is_empty() {
                self.exec_group(&group, &mut out);
            }
        }

        // invariant: every request index was answered by exactly one of
        // the shed, oversize, or group paths above.
        out.into_iter()
            .map(|r| r.expect("every request answered"))
            .collect()
    }

    /// Execute one coalesced group and write per-request answers. A batch
    /// failure or a poisoned output slice quarantines only the affected
    /// requests into the solo ladder; healthy neighbours keep their
    /// coalesced answers.
    fn exec_group(
        &self,
        group: &[&(usize, Pending)],
        out: &mut [Option<Result<Tensor, ServeError>>],
    ) {
        let batch_result = if group.len() == 1 {
            self.plan.try_run(&group[0].1.x)
        } else {
            let parts: Vec<&Tensor> = group.iter().map(|(_, p)| &p.x).collect();
            self.plan.try_run(&ops::concat(&parts, 0))
        };
        match batch_result {
            Ok(y) => {
                let mut off = 0;
                for (i, p) in group {
                    let b = p.x.shape()[0];
                    let slice = ops::slice(&y, 0, off, off + b);
                    off += b;
                    if slice.has_non_finite() {
                        counters::record_poisoned_output();
                        out[*i] = Some(self.quarantine(p));
                    } else {
                        out[*i] = Some(Ok(slice));
                    }
                }
            }
            Err(_) => {
                counters::record_batch_failure();
                for (i, p) in group {
                    out[*i] = Some(self.quarantine(p));
                }
            }
        }
    }

    /// Degradation ladder for one quarantined request: solo re-runs with
    /// bounded retry/backoff, then the tape fallback, then a typed error.
    fn quarantine(&self, p: &Pending) -> Result<Tensor, ServeError> {
        counters::record_quarantined();
        match self.run_attempts(&p.x) {
            Ok(y) => {
                counters::record_degraded_solo();
                Ok(y)
            }
            Err(e) => self.tape_rung(&p.x, e),
        }
    }

    /// Oversize request: run it as `max_batch`-sized sub-batches (each
    /// through the bounded-retry runner) and concatenate the answers, so
    /// no single forward ever exceeds the cap.
    fn run_oversize(&self, x: &Tensor) -> Result<Tensor, ServeError> {
        let b = x.shape()[0];
        let mut parts = Vec::with_capacity(b.div_ceil(self.max_batch));
        let mut off = 0;
        while off < b {
            let hi = (off + self.max_batch).min(b);
            let chunk = ops::slice(x, 0, off, hi);
            match self.run_attempts(&chunk) {
                Ok(y) => parts.push(y),
                Err(e) => return self.tape_rung(x, e),
            }
            off = hi;
        }
        let refs: Vec<&Tensor> = parts.iter().collect();
        Ok(ops::concat(&refs, 0))
    }

    /// Run `x` solo with bounded retries and exponential backoff,
    /// accepting only a finite output.
    fn run_attempts(&self, x: &Tensor) -> Result<Tensor, ServeError> {
        let attempts = 1 + self.retries;
        let mut poisoned = false;
        let mut last_cause = String::new();
        for attempt in 0..attempts {
            if attempt > 0 {
                counters::record_solo_retry();
                // Bounded backoff before hitting the plan again: a
                // transient fault gets a breath, a persistent one costs at
                // most a few milliseconds before the next rung.
                let backoff_us = 100u64 << (attempt - 1).min(4);
                std::thread::sleep(std::time::Duration::from_micros(backoff_us));
            }
            match self.plan.try_run(x) {
                Ok(y) if !y.has_non_finite() => return Ok(y),
                Ok(_) => {
                    counters::record_poisoned_output();
                    poisoned = true;
                }
                Err(e) => {
                    poisoned = false;
                    last_cause = e.to_string();
                }
            }
        }
        if poisoned {
            Err(ServeError::PoisonedOutput { attempts })
        } else {
            Err(ServeError::PlanExec {
                attempts,
                cause: last_cause,
            })
        }
    }

    /// Final ladder rung: answer from the tape fallback if one is
    /// installed and produces a finite forecast, else surface `err`.
    fn tape_rung(&self, x: &Tensor, err: ServeError) -> Result<Tensor, ServeError> {
        if let Some(fallback) = &self.tape_fallback {
            if let Some(y) = fallback(x) {
                if !y.has_non_finite() {
                    counters::record_degraded_tape();
                    return Ok(y);
                }
                counters::record_poisoned_output();
            }
        }
        counters::record_failed_request();
        Err(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BlockPlan, PlanSpec};
    use cts_graph::SensorGraph;
    use cts_nn::{fault, Linear};
    use cts_ops::{build_operator, GraphContext, OpKind, StOperator};
    use cts_tensor::init;
    use rand::{rngs::SmallRng, Rng, SeedableRng};

    fn plan(rng: &mut impl Rng) -> Rc<ExecPlan> {
        let (n, t, f, d) = (3, 4, 2, 4);
        let op: Rc<dyn StOperator> = Rc::from(build_operator(rng, OpKind::Gdcc, "op", d, 2, false));
        Rc::new(
            ExecPlan::compile(PlanSpec {
                embed: Rc::new(Linear::new(rng, "embed", f, d, true)),
                output: Rc::new(Linear::new(rng, "output", t * d, 5, true)),
                ctx: Rc::new(GraphContext::from_graph(&SensorGraph::identity(n), 2)),
                blocks: vec![BlockPlan {
                    m: 2,
                    edges: vec![(0, 1, op)],
                }],
                backbone: vec![0],
                out_scale: 1.0,
                out_shift: 0.0,
                input_len: t,
                d_model: d,
                nodes: n,
                features: f,
            })
            .unwrap(),
        )
    }

    fn request(rng: &mut impl Rng, b: usize) -> Tensor {
        init::uniform(rng, [b, 3, 4, 2], -1.0, 1.0)
    }

    #[test]
    fn coalesced_results_match_solo_runs() {
        let mut rng = SmallRng::seed_from_u64(0);
        let plan = plan(&mut rng);
        let requests: Vec<Tensor> = (0..5).map(|_| request(&mut rng, 1)).collect();
        let mut batcher = MicroBatcher::new(Rc::clone(&plan), 4).unwrap();
        for r in &requests {
            batcher.submit(r.clone()).unwrap();
        }
        assert_eq!(batcher.pending(), 5);
        let coalesced = batcher.flush();
        assert_eq!(batcher.pending(), 0);
        assert_eq!(coalesced.len(), 5);
        for (r, y) in requests.iter().zip(&coalesced) {
            let y = y.as_ref().unwrap();
            let solo = plan.try_run(r).unwrap();
            assert_eq!(y.shape(), &[1, 3, 5]);
            assert!(solo.approx_eq(y, 0.0), "coalesced forecast drifted");
        }
    }

    #[test]
    fn respects_max_batch_and_order() {
        let mut rng = SmallRng::seed_from_u64(1);
        let plan = plan(&mut rng);
        let mut batcher = MicroBatcher::new(plan, 2).unwrap();
        let a = request(&mut rng, 2);
        let b = request(&mut rng, 1);
        batcher.submit(a).unwrap();
        batcher.submit(b).unwrap();
        let out = batcher.flush();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].as_ref().unwrap().shape(), &[2, 3, 5]);
        assert_eq!(out[1].as_ref().unwrap().shape(), &[1, 3, 5]);
    }

    #[test]
    fn config_and_admission_errors_are_typed() {
        let mut rng = SmallRng::seed_from_u64(2);
        let plan = plan(&mut rng);
        assert!(matches!(
            MicroBatcher::new(Rc::clone(&plan), 0),
            Err(ServeError::Config(_))
        ));
        let mut batcher = MicroBatcher::new(plan, 4).unwrap();
        let err = batcher.submit(Tensor::zeros([1, 3, 9, 2])).unwrap_err();
        assert!(matches!(err, ServeError::BadShape { .. }));
        let mut nan = request(&mut rng, 1);
        nan.data_mut()[0] = f32::NAN;
        assert!(matches!(
            batcher.submit(nan),
            Err(ServeError::NonFinite { count: 1 })
        ));
        assert_eq!(batcher.pending(), 0, "rejected requests were queued");
    }

    #[test]
    fn oversize_request_splits_under_cap_and_matches_solo() {
        let mut rng = SmallRng::seed_from_u64(3);
        let plan = plan(&mut rng);
        let mut batcher = MicroBatcher::new(Rc::clone(&plan), 2).unwrap();
        let big = request(&mut rng, 5);
        fault::arm(fault::FaultPlan::default()); // reset max-batch tracker
        let solo = plan.try_run(&big).unwrap();
        batcher.submit(big).unwrap();
        let out = batcher.flush();
        let y = out[0].as_ref().unwrap();
        assert_eq!(y.shape(), &[5, 3, 5]);
        assert!(y.approx_eq(&solo, 0.0), "split answer drifted");
        assert!(
            fault::max_batch_rows() <= 5,
            "tracker saw {}",
            fault::max_batch_rows()
        );
        // The split chunks (2+2+1) never exceeded the cap — only the
        // pre-submit solo reference ran the full 5 rows at once.
        fault::disarm();
    }

    #[test]
    fn queue_bound_sheds_and_deadline_sheds() {
        let mut rng = SmallRng::seed_from_u64(4);
        let plan = plan(&mut rng);
        let mut batcher = MicroBatcher::new(plan, 4)
            .unwrap()
            .with_queue_limit(2)
            .unwrap();
        batcher.submit(request(&mut rng, 1)).unwrap();
        batcher
            .submit_with_deadline(request(&mut rng, 1), Some(-1.0))
            .unwrap();
        let shed = batcher.submit(request(&mut rng, 1)).unwrap_err();
        assert_eq!(shed, ServeError::QueueFull { limit: 2 });
        let out = batcher.flush();
        assert!(out[0].is_ok());
        assert!(matches!(
            out[1],
            Err(ServeError::DeadlineExpired { deadline_ms, .. }) if deadline_ms == -1.0
        ));
    }

    #[test]
    fn batch_failure_quarantines_and_neighbours_stay_bit_identical() {
        let mut rng = SmallRng::seed_from_u64(5);
        let plan = plan(&mut rng);
        let requests: Vec<Tensor> = (0..3).map(|_| request(&mut rng, 1)).collect();
        let solos: Vec<Tensor> = requests.iter().map(|r| plan.try_run(r).unwrap()).collect();
        let mut batcher = MicroBatcher::new(Rc::clone(&plan), 4).unwrap();
        for r in &requests {
            batcher.submit(r.clone()).unwrap();
        }
        // Fail the coalesced batch (run 0); the three solo re-runs succeed.
        fault::arm(fault::FaultPlan {
            fail_plan_run_at: Some(0),
            ..fault::FaultPlan::default()
        });
        let out = batcher.flush();
        fault::disarm();
        for (solo, y) in solos.iter().zip(&out) {
            assert!(y.as_ref().unwrap().approx_eq(solo, 0.0), "answer drifted");
        }
    }

    #[test]
    fn exhausted_ladder_falls_back_to_tape_then_errors() {
        let mut rng = SmallRng::seed_from_u64(6);
        let plan = plan(&mut rng);
        let canned = Tensor::zeros([1, 3, 5]);
        let fallback_answer = canned.clone();
        let mut batcher = MicroBatcher::new(Rc::clone(&plan), 4)
            .unwrap()
            .with_retries(1)
            .with_tape_fallback(Box::new(move |_| Some(fallback_answer.clone())));
        batcher.submit(request(&mut rng, 1)).unwrap();
        // Batch + solo + retry all fail → tape answers.
        fault::arm(fault::FaultPlan {
            fail_next_plan_runs: 3,
            ..fault::FaultPlan::default()
        });
        let out = batcher.flush();
        assert!(out[0].as_ref().unwrap().approx_eq(&canned, 0.0));
        // Without a fallback the same storm surfaces the typed error.
        let mut bare = MicroBatcher::new(plan, 4).unwrap().with_retries(1);
        bare.submit(request(&mut rng, 1)).unwrap();
        fault::arm(fault::FaultPlan {
            fail_next_plan_runs: 3,
            ..fault::FaultPlan::default()
        });
        let out = bare.flush();
        fault::disarm();
        assert!(matches!(
            out[0],
            Err(ServeError::PlanExec { attempts: 2, .. })
        ));
    }

    #[test]
    fn poisoned_slice_quarantines_only_that_request() {
        let mut rng = SmallRng::seed_from_u64(7);
        let plan = plan(&mut rng);
        let requests: Vec<Tensor> = (0..2).map(|_| request(&mut rng, 1)).collect();
        let solos: Vec<Tensor> = requests.iter().map(|r| plan.try_run(r).unwrap()).collect();
        let mut batcher = MicroBatcher::new(Rc::clone(&plan), 4).unwrap();
        for r in &requests {
            batcher.submit(r.clone()).unwrap();
        }
        let _gate = crate::testlock::counters();
        cts_obs::serve::reset();
        // Poison the coalesced run's first element: request 0's slice is
        // non-finite, request 1's is clean and must keep its answer.
        fault::arm(fault::FaultPlan {
            nan_output_at_run: Some(0),
            ..fault::FaultPlan::default()
        });
        let out = batcher.flush();
        fault::disarm();
        assert!(out[0].as_ref().unwrap().approx_eq(&solos[0], 0.0));
        assert!(out[1].as_ref().unwrap().approx_eq(&solos[1], 0.0));
        let counters = cts_obs::serve::snapshot();
        assert_eq!(counters.quarantined, 1, "healthy neighbour quarantined");
        assert_eq!(counters.degraded_solo, 1);
    }
}
