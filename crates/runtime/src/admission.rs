//! Per-request admission control: shape, finiteness, and missing-data
//! checks applied before a request may enter the pending queue.

use crate::error::ServeError;
use cts_data::{is_missing, mask_non_finite, missing_fraction};
use cts_tensor::Tensor;

/// What a request must satisfy to be admitted, and how hostile inputs are
/// sanitized on the way in.
#[derive(Clone, Copy, Debug)]
pub struct AdmissionPolicy {
    /// The dataset's missing-reading sentinel. When present, non-finite
    /// request entries are masked into it (the masked losses/metrics
    /// convention); when absent, any non-finite entry rejects the request.
    pub null_value: Option<f32>,
    /// Maximum tolerated missing fraction (sentinel + non-finite entries)
    /// in any single window's target feature. `1.0` disables the check.
    pub missing_cap: f32,
}

impl Default for AdmissionPolicy {
    fn default() -> Self {
        Self {
            null_value: None,
            missing_cap: 1.0,
        }
    }
}

/// What admission did to an accepted request.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AdmissionReport {
    /// Non-finite entries rewritten to the null sentinel.
    pub masked: usize,
}

impl AdmissionPolicy {
    /// Policy with the given sentinel and cap.
    ///
    /// # Errors
    /// [`ServeError::Config`] when `missing_cap` is not a fraction in
    /// `[0, 1]`.
    pub fn new(null_value: Option<f32>, missing_cap: f32) -> Result<Self, ServeError> {
        if !(0.0..=1.0).contains(&missing_cap) {
            return Err(ServeError::Config(format!(
                "missing_cap must be in [0, 1], got {missing_cap}"
            )));
        }
        Ok(Self {
            null_value,
            missing_cap,
        })
    }

    /// Validate (and possibly sanitize, in place) one request
    /// `[b, N, T, F]` against a plan compiled for `want = [N, T, F]`.
    ///
    /// Checks run in order: shape, per-window missing fraction on the
    /// target feature (feature 0, counting both sentinel and non-finite
    /// entries), then non-finite handling — masked to the sentinel when
    /// one exists, rejected otherwise.
    ///
    /// # Errors
    /// [`ServeError::BadShape`], [`ServeError::TooMissing`], or
    /// [`ServeError::NonFinite`].
    pub fn admit(&self, x: &mut Tensor, want: [usize; 3]) -> Result<AdmissionReport, ServeError> {
        let s = x.shape();
        if s.len() != 4 || s[1..] != want {
            return Err(ServeError::BadShape {
                got: s.to_vec(),
                want,
            });
        }
        let (b, n, t, f) = (s[0], s[1], s[2], s[3]);
        if self.missing_cap < 1.0 {
            // Per-window check on the target feature: one dead batch row
            // must not be diluted by its healthy neighbours.
            let data = x.data();
            let mut target = Vec::with_capacity(n * t);
            for row in 0..b {
                target.clear();
                let base = row * n * t * f;
                for nt in 0..n * t {
                    target.push(data[base + nt * f]);
                }
                let frac = missing_fraction(&target, self.null_value);
                if frac > self.missing_cap {
                    return Err(ServeError::TooMissing {
                        frac,
                        cap: self.missing_cap,
                    });
                }
            }
        }
        match self.null_value {
            Some(nv) => Ok(AdmissionReport {
                masked: mask_non_finite(x, nv),
            }),
            None => {
                let count = x.data().iter().filter(|v| !v.is_finite()).count();
                if count > 0 {
                    Err(ServeError::NonFinite { count })
                } else {
                    Ok(AdmissionReport::default())
                }
            }
        }
    }

    /// Is `v` a missing reading under this policy's sentinel?
    pub fn is_missing(&self, v: f32) -> bool {
        is_missing(v, self.null_value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const WANT: [usize; 3] = [2, 3, 2];

    fn healthy() -> Tensor {
        Tensor::from_vec([1, 2, 3, 2], (0..12).map(|i| 1.0 + i as f32).collect())
    }

    #[test]
    fn rejects_bad_shapes() {
        let policy = AdmissionPolicy::default();
        let mut wrong_rank = Tensor::zeros([2, 3, 2]);
        assert!(matches!(
            policy.admit(&mut wrong_rank, WANT),
            Err(ServeError::BadShape { .. })
        ));
        let mut wrong_dims = Tensor::zeros([1, 2, 4, 2]);
        assert!(matches!(
            policy.admit(&mut wrong_dims, WANT),
            Err(ServeError::BadShape { .. })
        ));
        let mut ok = healthy();
        assert!(policy.admit(&mut ok, WANT).is_ok());
    }

    #[test]
    fn masks_non_finite_when_sentinel_exists_rejects_otherwise() {
        let mut x = healthy();
        x.data_mut()[3] = f32::NAN;
        let strict = AdmissionPolicy::default();
        assert_eq!(
            strict.admit(&mut x.clone(), WANT),
            Err(ServeError::NonFinite { count: 1 })
        );
        let masking = AdmissionPolicy::new(Some(0.0), 1.0).unwrap();
        let report = masking.admit(&mut x, WANT).unwrap();
        assert_eq!(report.masked, 1);
        assert_eq!(x.data()[3], 0.0);
    }

    #[test]
    fn per_window_missing_cap_sees_through_healthy_rows() {
        let policy = AdmissionPolicy::new(Some(0.0), 0.5).unwrap();
        // Row 0 healthy, row 1 fully missing on the target feature: the
        // overall fraction is 0.5 but the per-window fraction is 1.0.
        let mut x = Tensor::from_vec(
            [2, 2, 3, 2],
            (0..24)
                .map(|i| if i >= 12 && i % 2 == 0 { 0.0 } else { 1.0 + i as f32 })
                .collect(),
        );
        let err = policy.admit(&mut x, WANT).unwrap_err();
        assert!(matches!(err, ServeError::TooMissing { frac, .. } if frac > 0.99));
        // Loosening the cap admits it.
        let loose = AdmissionPolicy::new(Some(0.0), 1.0).unwrap();
        assert!(loose.admit(&mut x, WANT).is_ok());
    }

    #[test]
    fn cap_validation() {
        assert!(matches!(
            AdmissionPolicy::new(None, 1.5),
            Err(ServeError::Config(_))
        ));
        assert!(AdmissionPolicy::new(None, 0.0).is_ok());
    }
}
