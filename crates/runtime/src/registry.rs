//! Registry of compiled plans keyed by model id — the serving layer's
//! lookup table.

use crate::ExecPlan;
use std::collections::HashMap;
use std::rc::Rc;

/// Maps model ids to compiled [`ExecPlan`]s.
///
/// Plans are shared (`Rc`) so a registry entry, a [`crate::MicroBatcher`]
/// and a latency probe can all hold the same compiled program without
/// duplicating its workspace.
#[derive(Default)]
pub struct PlanRegistry {
    plans: HashMap<String, Rc<ExecPlan>>,
}

impl PlanRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or replace) a plan under `id`; returns the plan it
    /// displaced, if any.
    pub fn insert(&mut self, id: impl Into<String>, plan: Rc<ExecPlan>) -> Option<Rc<ExecPlan>> {
        self.plans.insert(id.into(), plan)
    }

    /// Look up a plan by model id.
    pub fn get(&self, id: &str) -> Option<Rc<ExecPlan>> {
        self.plans.get(id).cloned()
    }

    /// Remove a plan, returning it if it was registered.
    pub fn remove(&mut self, id: &str) -> Option<Rc<ExecPlan>> {
        self.plans.remove(id)
    }

    /// Registered model ids, sorted for deterministic reports.
    pub fn ids(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.plans.keys().map(String::as_str).collect();
        v.sort_unstable();
        v
    }

    /// Number of registered plans.
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// True when no plan is registered.
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }
}
