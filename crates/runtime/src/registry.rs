//! Registry of compiled plans keyed by model id — the serving layer's
//! lookup table, guarded by a canary gate so a miscompiled plan can never
//! replace a serving one.

use crate::error::ServeError;
use crate::ExecPlan;
use cts_obs::serve as counters;
use cts_ops::OpCost;
use cts_tensor::Tensor;
use std::collections::HashMap;
use std::rc::Rc;

/// Maps model ids to compiled [`ExecPlan`]s.
///
/// Plans are shared (`Rc`) so a registry entry, a [`crate::MicroBatcher`]
/// and a latency probe can all hold the same compiled program without
/// duplicating its workspace.
#[derive(Default)]
pub struct PlanRegistry {
    plans: HashMap<String, Rc<ExecPlan>>,
    /// Static per-forward cost at the admission probe's batch size,
    /// recorded by [`PlanRegistry::admit`] for capacity reports.
    costs: HashMap<String, OpCost>,
}

impl PlanRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or replace) a plan under `id`; returns the plan it
    /// displaced, if any.
    pub fn insert(&mut self, id: impl Into<String>, plan: Rc<ExecPlan>) -> Option<Rc<ExecPlan>> {
        let id = id.into();
        // Un-gated inserts carry no probe, so no admission-time cost.
        self.costs.remove(&id);
        self.plans.insert(id, plan)
    }

    /// Canary-gated registration: run `plan` on a probe window and admit
    /// it under `id` only if the forecast matches the caller's tape
    /// `reference` within `tol`. On failure nothing changes — the
    /// previously registered plan (if any) keeps serving, which is the
    /// rollback — and the rejection is counted and returned as a typed
    /// error.
    ///
    /// # Errors
    /// [`ServeError::CanaryRejected`] when the probe run fails, comes
    /// back with a different shape, or diverges from `reference`.
    pub fn admit(
        &mut self,
        id: impl Into<String>,
        plan: Rc<ExecPlan>,
        probe: &Tensor,
        reference: &Tensor,
        tol: f32,
    ) -> Result<Option<Rc<ExecPlan>>, ServeError> {
        let id = id.into();
        let reject = |cause: String| {
            counters::record_canary_fail();
            ServeError::CanaryRejected {
                id: id.clone(),
                cause,
            }
        };
        let y = plan
            .try_run(probe)
            .map_err(|e| reject(format!("probe run failed: {e}")))?;
        if y.shape() != reference.shape() {
            return Err(reject(format!(
                "probe forecast shape {:?} != reference {:?}",
                y.shape(),
                reference.shape()
            )));
        }
        if !y.approx_eq(reference, tol) {
            return Err(reject(format!(
                "probe forecast diverged from tape reference beyond tol {tol}"
            )));
        }
        counters::record_canary_pass();
        self.costs
            .insert(id.clone(), plan.static_cost(probe.shape()[0]));
        Ok(self.plans.insert(id, plan))
    }

    /// Look up a plan by model id.
    pub fn get(&self, id: &str) -> Option<Rc<ExecPlan>> {
        self.plans.get(id).cloned()
    }

    /// The static per-forward cost recorded when `id` was admitted (at the
    /// admission probe's batch size). `None` for un-gated inserts.
    pub fn static_cost(&self, id: &str) -> Option<&OpCost> {
        self.costs.get(id)
    }

    /// Remove a plan, returning it if it was registered.
    pub fn remove(&mut self, id: &str) -> Option<Rc<ExecPlan>> {
        self.costs.remove(id);
        self.plans.remove(id)
    }

    /// Registered model ids, sorted for deterministic reports.
    pub fn ids(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.plans.keys().map(String::as_str).collect();
        v.sort_unstable();
        v
    }

    /// Number of registered plans.
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// True when no plan is registered.
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BlockPlan, PlanSpec};
    use cts_graph::SensorGraph;
    use cts_nn::{fault, Linear};
    use cts_ops::{build_operator, GraphContext, OpKind, StOperator};
    use cts_tensor::init;
    use rand::{rngs::SmallRng, Rng, SeedableRng};

    fn plan(rng: &mut impl Rng) -> Rc<ExecPlan> {
        let (n, t, f, d) = (3, 4, 2, 4);
        let op: Rc<dyn StOperator> = Rc::from(build_operator(rng, OpKind::Gdcc, "op", d, 2, false));
        Rc::new(
            ExecPlan::compile(PlanSpec {
                embed: Rc::new(Linear::new(rng, "embed", f, d, true)),
                output: Rc::new(Linear::new(rng, "output", t * d, 5, true)),
                ctx: Rc::new(GraphContext::from_graph(&SensorGraph::identity(n), 2)),
                blocks: vec![BlockPlan {
                    m: 2,
                    edges: vec![(0, 1, op)],
                }],
                backbone: vec![0],
                out_scale: 1.0,
                out_shift: 0.0,
                input_len: t,
                d_model: d,
                nodes: n,
                features: f,
            })
            .unwrap(),
        )
    }

    #[test]
    fn canary_admits_parity_and_rolls_back_divergence() {
        let mut rng = SmallRng::seed_from_u64(0);
        let good = plan(&mut rng);
        let imposter = plan(&mut rng); // different weights => diverges
        let probe = init::uniform(&mut rng, [1, 3, 4, 2], -1.0, 1.0);
        let reference = good.try_run(&probe).unwrap();
        let mut registry = PlanRegistry::new();
        registry
            .admit("m", Rc::clone(&good), &probe, &reference, 1e-6)
            .unwrap();
        assert!(registry.get("m").is_some());
        // Admission records the plan's static price at the probe batch.
        let cost = registry.static_cost("m").expect("cost recorded");
        assert_eq!(*cost, good.static_cost(1));
        assert!(cost.flops > 0);
        // A diverging plan is rejected and the good plan keeps serving.
        let err = match registry.admit("m", Rc::clone(&imposter), &probe, &reference, 1e-6) {
            Err(e) => e,
            Ok(_) => panic!("diverging plan admitted"),
        };
        assert!(matches!(err, ServeError::CanaryRejected { .. }), "{err}");
        assert!(
            Rc::ptr_eq(&registry.get("m").unwrap(), &good),
            "rollback lost the serving plan"
        );
    }

    #[test]
    fn canary_rejects_a_plan_whose_probe_run_fails() {
        let mut rng = SmallRng::seed_from_u64(1);
        let good = plan(&mut rng);
        let probe = init::uniform(&mut rng, [1, 3, 4, 2], -1.0, 1.0);
        let reference = good.try_run(&probe).unwrap();
        let mut registry = PlanRegistry::new();
        fault::arm(fault::FaultPlan {
            fail_plan_run_at: Some(0),
            ..fault::FaultPlan::default()
        });
        let err = match registry.admit("m", Rc::clone(&good), &probe, &reference, 1e-6) {
            Err(e) => e,
            Ok(_) => panic!("failing canary admitted"),
        };
        fault::disarm();
        assert!(err.to_string().contains("probe run failed"), "{err}");
        assert!(registry.is_empty(), "failing canary still registered");
    }
}
