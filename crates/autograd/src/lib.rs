//! `cts-autograd`: define-by-run reverse-mode automatic differentiation on
//! top of [`cts_tensor`].
//!
//! A [`Tape`] records every operation of one forward pass as a node in a
//! topologically ordered arena; [`Tape::backward`] walks the arena in reverse
//! and accumulates gradients. Model weights live *outside* the tape as
//! [`Parameter`]s (shared, reference-counted), so a fresh tape per training
//! step costs only the activations — exactly what the bi-level optimisation
//! of AutoCTS needs, where two disjoint parameter sets (architecture `Θ` and
//! network weights `w`) are updated by two different optimisers.
//!
//! ```
//! use cts_autograd::{Parameter, Tape};
//! use cts_tensor::Tensor;
//!
//! let w = Parameter::new("w", Tensor::from_vec([2, 1], vec![1.0, -1.0]));
//! let tape = Tape::new();
//! let x = tape.constant(Tensor::from_vec([1, 2], vec![3.0, 5.0]));
//! let y = x.matmul(&tape.param(&w)); // [1,1] = 3 - 5 = -2
//! let loss = y.square().mean_all();
//! tape.backward(&loss);
//! assert_eq!(y.value().item(), -2.0);
//! assert_eq!(w.grad().data(), &[-12.0, -20.0]); // 2*(-2)*x
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod op;
mod parameter;
mod tape;
mod var;

pub mod gradcheck;

pub use op::{Grads, GradsIter, Op};
pub use parameter::Parameter;
pub use tape::Tape;
pub use var::Var;
