//! Trainable parameters that live outside any tape.

use cts_tensor::Tensor;
use std::cell::{Ref, RefCell, RefMut};
use std::fmt;
use std::rc::Rc;

struct ParamInner {
    name: String,
    value: Tensor,
    grad: Tensor,
}

/// A named, trainable tensor shared between modules, tapes, and optimizers.
///
/// Cloning a `Parameter` is cheap and aliases the same storage — the clone
/// seen by an optimizer updates the weights the model reads on the next
/// forward pass. Gradients accumulate across [`crate::Tape::backward`] calls
/// until [`Parameter::zero_grad`] is invoked.
#[derive(Clone)]
pub struct Parameter {
    inner: Rc<RefCell<ParamInner>>,
}

impl Parameter {
    /// Create a parameter with an initial value; gradient starts at zero.
    pub fn new(name: impl Into<String>, value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape());
        Self {
            inner: Rc::new(RefCell::new(ParamInner {
                name: name.into(),
                value,
                grad,
            })),
        }
    }

    /// The parameter's name (used in diagnostics and checkpoints).
    pub fn name(&self) -> String {
        self.inner.borrow().name.clone()
    }

    /// Borrow the current value.
    pub fn value(&self) -> Ref<'_, Tensor> {
        Ref::map(self.inner.borrow(), |p| &p.value)
    }

    /// Mutably borrow the current value (used by optimizers).
    pub fn value_mut(&self) -> RefMut<'_, Tensor> {
        RefMut::map(self.inner.borrow_mut(), |p| &mut p.value)
    }

    /// Borrow the accumulated gradient.
    pub fn grad(&self) -> Ref<'_, Tensor> {
        Ref::map(self.inner.borrow(), |p| &p.grad)
    }

    /// Mutably borrow the gradient (used by clipping).
    pub fn grad_mut(&self) -> RefMut<'_, Tensor> {
        RefMut::map(self.inner.borrow_mut(), |p| &mut p.grad)
    }

    /// Number of scalar weights.
    pub fn len(&self) -> usize {
        self.inner.borrow().value.len()
    }

    /// True for zero-sized parameters (never constructed in practice).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Shape of the parameter.
    pub fn shape(&self) -> Vec<usize> {
        self.inner.borrow().value.shape().to_vec()
    }

    /// Reset the accumulated gradient to zero.
    pub fn zero_grad(&self) {
        self.inner.borrow_mut().grad.fill(0.0);
    }

    /// Accumulate `g` into the gradient buffer.
    pub(crate) fn accumulate_grad(&self, g: &Tensor) {
        self.inner.borrow_mut().grad.axpy(1.0, g);
    }

    /// Overwrite the value (used for checkpoint restore / re-init).
    pub fn set_value(&self, value: Tensor) {
        let mut inner = self.inner.borrow_mut();
        assert_eq!(inner.value.shape(), value.shape(), "set_value shape mismatch");
        inner.value = value;
    }

    /// True when both sides alias the same storage.
    pub fn ptr_eq(&self, other: &Parameter) -> bool {
        Rc::ptr_eq(&self.inner, &other.inner)
    }
}

impl fmt::Debug for Parameter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.borrow();
        write!(f, "Parameter({:?}, shape {:?})", inner.name, inner.value.shape())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_aliases_storage() {
        let p = Parameter::new("w", Tensor::zeros([2]));
        let q = p.clone();
        q.value_mut().data_mut()[0] = 5.0;
        assert_eq!(p.value().data()[0], 5.0);
        assert!(p.ptr_eq(&q));
    }

    #[test]
    fn grad_accumulates_until_zeroed() {
        let p = Parameter::new("w", Tensor::zeros([2]));
        p.accumulate_grad(&Tensor::ones([2]));
        p.accumulate_grad(&Tensor::ones([2]));
        assert_eq!(p.grad().data(), &[2.0, 2.0]);
        p.zero_grad();
        assert_eq!(p.grad().data(), &[0.0, 0.0]);
    }

    #[test]
    #[should_panic]
    fn set_value_shape_checked() {
        let p = Parameter::new("w", Tensor::zeros([2]));
        p.set_value(Tensor::zeros([3]));
    }
}
