//! The primitive operation set and its backward dispatch.

use cts_tensor::{arena, ops, Shape, Tensor};

/// Gradients of one node's inputs, held inline for the 0/1/2-input ops
/// that make up essentially the whole tape; only variadic ops (concat)
/// spill to a heap Vec. Backward runs once per node per step, so this
/// container is on the allocation-count hot path.
pub enum Grads {
    /// Leaf: nothing to differentiate.
    None,
    /// Unary op.
    One(Tensor),
    /// Binary op.
    Two(Tensor, Tensor),
    /// Variadic op (concat).
    Many(Vec<Tensor>),
}

impl Grads {
    /// Number of input gradients.
    pub fn len(&self) -> usize {
        match self {
            Grads::None => 0,
            Grads::One(_) => 1,
            Grads::Two(_, _) => 2,
            Grads::Many(v) => v.len(),
        }
    }

    /// True when there are no gradients.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Draining iterator over [`Grads`] in input order.
pub struct GradsIter {
    inline: [Option<Tensor>; 2],
    idx: usize,
    spill: std::vec::IntoIter<Tensor>,
}

impl Iterator for GradsIter {
    type Item = Tensor;
    fn next(&mut self) -> Option<Tensor> {
        while self.idx < 2 {
            let slot = self.inline[self.idx].take();
            self.idx += 1;
            if slot.is_some() {
                return slot;
            }
        }
        self.spill.next()
    }
}

impl IntoIterator for Grads {
    type Item = Tensor;
    type IntoIter = GradsIter;
    fn into_iter(self) -> GradsIter {
        let (inline, spill) = match self {
            Grads::None => ([None, None], Vec::new()),
            Grads::One(a) => ([Some(a), None], Vec::new()),
            Grads::Two(a, b) => ([Some(a), Some(b)], Vec::new()),
            Grads::Many(v) => ([None, None], v),
        };
        GradsIter { inline, idx: 0, spill: spill.into_iter() }
    }
}

/// Every differentiable primitive the tape can record.
///
/// Backward formulas live in [`Op::backward`]; the numeric kernels (forward
/// and gradient) come from [`cts_tensor::ops`] so they can be unit-tested
/// without a tape.
#[derive(Clone, Debug)]
pub enum Op {
    /// Constant or parameter leaf; nothing to differentiate through.
    Leaf,
    /// Elementwise `a + b` with broadcasting.
    Add,
    /// Elementwise `a - b` with broadcasting.
    Sub,
    /// Elementwise `a * b` with broadcasting.
    Mul,
    /// Elementwise `a / b` with broadcasting.
    Div,
    /// Elementwise negation.
    Neg,
    /// Multiply by a compile-time scalar.
    Scale(f32),
    /// Add a compile-time scalar.
    AddScalar(f32),
    /// max(x, 0).
    Relu,
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// Elementwise exponential.
    Exp,
    /// Natural logarithm.
    Ln,
    /// Elementwise square root.
    Sqrt,
    /// Elementwise absolute value.
    Abs,
    /// Elementwise square.
    Square,
    /// Gaussian error linear unit (tanh approximation).
    Gelu,
    /// Clamp into `[lo, hi]`; gradient passes only inside the range.
    Clamp(f32, f32),
    /// Softmax over the last axis.
    SoftmaxLast,
    /// Batched matrix multiplication over the trailing two dims.
    MatMul,
    /// Dimension permutation.
    Permute(Shape),
    /// Reshape to a new shape of the same element count.
    Reshape,
    /// Concatenation along `axis` (any number of inputs).
    Concat {
        /// Concatenation axis.
        axis: usize,
    },
    /// Contiguous slice `[start, start+len)` along `axis`.
    Slice {
        /// Sliced axis.
        axis: usize,
        /// Slice start offset.
        start: usize,
    },
    /// Gather `indices` along `axis`.
    IndexSelect {
        /// Gather axis.
        axis: usize,
        /// Gathered indices.
        indices: Vec<usize>,
    },
    /// Zero-pad along `axis`.
    PadAxis {
        /// Padded axis.
        axis: usize,
        /// Zeros inserted before.
        before: usize,
        /// Zeros appended after.
        after: usize,
    },
    /// Sum over one axis.
    SumAxis {
        /// Reduced axis.
        axis: usize,
        /// Keep the reduced axis as length 1.
        keepdim: bool,
    },
    /// Mean over one axis.
    MeanAxis {
        /// Reduced axis.
        axis: usize,
        /// Keep the reduced axis as length 1.
        keepdim: bool,
    },
    /// Sum of every element (shape `[1]`).
    SumAll,
    /// Mean of every element (shape `[1]`).
    MeanAll,
    /// Dilated causal temporal convolution (input 0: x, input 1: kernel).
    TemporalConv {
        /// Convolution dilation over the time axis.
        dilation: usize,
    },
}

impl Op {
    /// Gradients w.r.t. each input.
    ///
    /// * `grad` — upstream gradient w.r.t. this node's output
    /// * `output` — the saved forward output of this node
    /// * `inputs` — the saved forward values of the node's inputs
    ///
    /// Returns one gradient per input, shaped exactly like that input.
    pub fn backward(&self, grad: &Tensor, output: &Tensor, inputs: &[&Tensor]) -> Grads {
        match self {
            Op::Leaf => Grads::None,
            Op::Add => Grads::Two(
                ops::binary_grad_passthrough(grad, inputs[0].shape()),
                ops::binary_grad_passthrough(grad, inputs[1].shape()),
            ),
            Op::Sub => Grads::Two(
                ops::binary_grad_passthrough(grad, inputs[0].shape()),
                ops::reduce_to_shape(&ops::neg(grad), inputs[1].shape()),
            ),
            Op::Mul => Grads::Two(
                ops::mul_grad(grad, inputs[1], inputs[0].shape()),
                ops::mul_grad(grad, inputs[0], inputs[1].shape()),
            ),
            Op::Div => Grads::Two(
                ops::div_grad_a(grad, inputs[1], inputs[0].shape()),
                ops::div_grad_b(grad, inputs[0], inputs[1]),
            ),
            Op::Neg => Grads::One(ops::neg(grad)),
            Op::Scale(c) => Grads::One(ops::scale(grad, *c)),
            Op::AddScalar(_) => Grads::One(grad.clone()),
            Op::Relu => Grads::One(ops::relu_grad(grad, inputs[0])),
            Op::Sigmoid => Grads::One(ops::sigmoid_grad(grad, output)),
            Op::Tanh => Grads::One(ops::tanh_grad(grad, output)),
            Op::Exp => Grads::One(ops::mul(grad, output)),
            Op::Ln => Grads::One(ops::ln_grad(grad, inputs[0])),
            Op::Sqrt => Grads::One(ops::sqrt_grad(grad, output)),
            Op::Abs => Grads::One(ops::abs_grad(grad, inputs[0])),
            Op::Square => Grads::One(ops::square_grad(grad, inputs[0])),
            Op::Gelu => Grads::One(ops::gelu_grad(grad, inputs[0])),
            Op::Clamp(lo, hi) => {
                let data = arena::take_from_iter(
                    grad.len(),
                    grad.data()
                        .iter()
                        .zip(inputs[0].data().iter())
                        .map(|(&g, &x)| if x > *lo && x < *hi { g } else { 0.0 }),
                );
                Grads::One(Tensor::from_vec(inputs[0].shape(), data))
            }
            Op::SoftmaxLast => Grads::One(ops::softmax_last_grad(grad, output)),
            Op::MatMul => Grads::Two(
                ops::matmul_grad_a(grad, inputs[1], inputs[0].shape()),
                ops::matmul_grad_b(grad, inputs[0], inputs[1].shape()),
            ),
            Op::Permute(perm) => Grads::One(ops::permute_grad(grad, perm)),
            Op::Reshape => Grads::One(grad.clone().reshaped(inputs[0].shape())),
            Op::Concat { axis } => {
                let mut grads = Vec::with_capacity(inputs.len());
                let mut offset = 0;
                for inp in inputs {
                    let len = inp.shape()[*axis];
                    grads.push(ops::slice(grad, *axis, offset, offset + len));
                    offset += len;
                }
                Grads::Many(grads)
            }
            Op::Slice { axis, start } => {
                Grads::One(ops::slice_grad(grad, inputs[0].shape(), *axis, *start))
            }
            Op::IndexSelect { axis, indices } => {
                Grads::One(ops::index_select_grad(grad, inputs[0].shape(), *axis, indices))
            }
            Op::PadAxis { axis, before, .. } => {
                Grads::One(ops::pad_axis_grad(grad, *axis, *before, inputs[0].shape()[*axis]))
            }
            Op::SumAxis { axis, .. } => Grads::One(ops::sum_axis_grad(
                &squeeze_keepdim(grad, inputs[0].shape(), *axis),
                inputs[0].shape(),
                *axis,
            )),
            Op::MeanAxis { axis, .. } => Grads::One(ops::mean_axis_grad(
                &squeeze_keepdim(grad, inputs[0].shape(), *axis),
                inputs[0].shape(),
                *axis,
            )),
            Op::SumAll => Grads::One(ops::sum_all_grad(grad, inputs[0].shape())),
            Op::MeanAll => Grads::One(ops::mean_all_grad(grad, inputs[0].shape())),
            Op::TemporalConv { dilation } => Grads::Two(
                ops::temporal_conv_grad_x(grad, inputs[1], inputs[0].shape(), *dilation),
                ops::temporal_conv_grad_w(grad, inputs[0], inputs[1].shape(), *dilation),
            ),
        }
    }
}

/// `sum_axis_grad` expects the reduced (no-keepdim) layout; flatten a kept
/// axis of length 1 if present. The buffer is identical either way.
fn squeeze_keepdim(grad: &Tensor, input_shape: &[usize], axis: usize) -> Tensor {
    if grad.rank() == input_shape.len() {
        let mut s: Shape = grad
            .shape()
            .iter()
            .enumerate()
            .filter_map(|(i, &d)| (i != axis).then_some(d))
            .collect();
        if s.is_empty() {
            s.push(1);
        }
        grad.clone().reshaped(s)
    } else {
        grad.clone()
    }
}
