//! The primitive operation set and its backward dispatch.

use cts_tensor::{ops, Tensor};

/// Every differentiable primitive the tape can record.
///
/// Backward formulas live in [`Op::backward`]; the numeric kernels (forward
/// and gradient) come from [`cts_tensor::ops`] so they can be unit-tested
/// without a tape.
#[derive(Clone, Debug)]
pub enum Op {
    /// Constant or parameter leaf; nothing to differentiate through.
    Leaf,
    /// Elementwise `a + b` with broadcasting.
    Add,
    /// Elementwise `a - b` with broadcasting.
    Sub,
    /// Elementwise `a * b` with broadcasting.
    Mul,
    /// Elementwise `a / b` with broadcasting.
    Div,
    /// Elementwise negation.
    Neg,
    /// Multiply by a compile-time scalar.
    Scale(f32),
    /// Add a compile-time scalar.
    AddScalar(f32),
    /// max(x, 0).
    Relu,
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// Elementwise exponential.
    Exp,
    /// Natural logarithm.
    Ln,
    /// Elementwise square root.
    Sqrt,
    /// Elementwise absolute value.
    Abs,
    /// Elementwise square.
    Square,
    /// Gaussian error linear unit (tanh approximation).
    Gelu,
    /// Clamp into `[lo, hi]`; gradient passes only inside the range.
    Clamp(f32, f32),
    /// Softmax over the last axis.
    SoftmaxLast,
    /// Batched matrix multiplication over the trailing two dims.
    MatMul,
    /// Dimension permutation.
    Permute(Vec<usize>),
    /// Reshape to a new shape of the same element count.
    Reshape,
    /// Concatenation along `axis` (any number of inputs).
    Concat {
        /// Concatenation axis.
        axis: usize,
    },
    /// Contiguous slice `[start, start+len)` along `axis`.
    Slice {
        /// Sliced axis.
        axis: usize,
        /// Slice start offset.
        start: usize,
    },
    /// Gather `indices` along `axis`.
    IndexSelect {
        /// Gather axis.
        axis: usize,
        /// Gathered indices.
        indices: Vec<usize>,
    },
    /// Zero-pad along `axis`.
    PadAxis {
        /// Padded axis.
        axis: usize,
        /// Zeros inserted before.
        before: usize,
        /// Zeros appended after.
        after: usize,
    },
    /// Sum over one axis.
    SumAxis {
        /// Reduced axis.
        axis: usize,
        /// Keep the reduced axis as length 1.
        keepdim: bool,
    },
    /// Mean over one axis.
    MeanAxis {
        /// Reduced axis.
        axis: usize,
        /// Keep the reduced axis as length 1.
        keepdim: bool,
    },
    /// Sum of every element (shape `[1]`).
    SumAll,
    /// Mean of every element (shape `[1]`).
    MeanAll,
    /// Dilated causal temporal convolution (input 0: x, input 1: kernel).
    TemporalConv {
        /// Convolution dilation over the time axis.
        dilation: usize,
    },
}

impl Op {
    /// Gradients w.r.t. each input.
    ///
    /// * `grad` — upstream gradient w.r.t. this node's output
    /// * `output` — the saved forward output of this node
    /// * `inputs` — the saved forward values of the node's inputs
    ///
    /// Returns one gradient per input, shaped exactly like that input.
    pub fn backward(&self, grad: &Tensor, output: &Tensor, inputs: &[&Tensor]) -> Vec<Tensor> {
        match self {
            Op::Leaf => vec![],
            Op::Add => vec![
                ops::binary_grad_passthrough(grad, inputs[0].shape()),
                ops::binary_grad_passthrough(grad, inputs[1].shape()),
            ],
            Op::Sub => vec![
                ops::binary_grad_passthrough(grad, inputs[0].shape()),
                ops::reduce_to_shape(&ops::neg(grad), inputs[1].shape()),
            ],
            Op::Mul => vec![
                ops::mul_grad(grad, inputs[1], inputs[0].shape()),
                ops::mul_grad(grad, inputs[0], inputs[1].shape()),
            ],
            Op::Div => vec![
                ops::div_grad_a(grad, inputs[1], inputs[0].shape()),
                ops::div_grad_b(grad, inputs[0], inputs[1]),
            ],
            Op::Neg => vec![ops::neg(grad)],
            Op::Scale(c) => vec![ops::scale(grad, *c)],
            Op::AddScalar(_) => vec![grad.clone()],
            Op::Relu => vec![ops::relu_grad(grad, inputs[0])],
            Op::Sigmoid => vec![ops::sigmoid_grad(grad, output)],
            Op::Tanh => vec![ops::tanh_grad(grad, output)],
            Op::Exp => vec![ops::mul(grad, output)],
            Op::Ln => vec![ops::ln_grad(grad, inputs[0])],
            Op::Sqrt => vec![ops::sqrt_grad(grad, output)],
            Op::Abs => vec![ops::abs_grad(grad, inputs[0])],
            Op::Square => vec![ops::square_grad(grad, inputs[0])],
            Op::Gelu => vec![ops::gelu_grad(grad, inputs[0])],
            Op::Clamp(lo, hi) => {
                let data = grad
                    .data()
                    .iter()
                    .zip(inputs[0].data().iter())
                    .map(|(&g, &x)| if x > *lo && x < *hi { g } else { 0.0 })
                    .collect();
                vec![Tensor::from_vec(inputs[0].shape().to_vec(), data)]
            }
            Op::SoftmaxLast => vec![ops::softmax_last_grad(grad, output)],
            Op::MatMul => vec![
                ops::matmul_grad_a(grad, inputs[1], inputs[0].shape()),
                ops::matmul_grad_b(grad, inputs[0], inputs[1].shape()),
            ],
            Op::Permute(perm) => vec![ops::permute_grad(grad, perm)],
            Op::Reshape => vec![grad.clone().reshaped(inputs[0].shape().to_vec())],
            Op::Concat { axis } => {
                let mut grads = Vec::with_capacity(inputs.len());
                let mut offset = 0;
                for inp in inputs {
                    let len = inp.shape()[*axis];
                    grads.push(ops::slice(grad, *axis, offset, offset + len));
                    offset += len;
                }
                grads
            }
            Op::Slice { axis, start } => {
                vec![ops::slice_grad(grad, inputs[0].shape(), *axis, *start)]
            }
            Op::IndexSelect { axis, indices } => {
                vec![ops::index_select_grad(grad, inputs[0].shape(), *axis, indices)]
            }
            Op::PadAxis { axis, before, .. } => {
                vec![ops::pad_axis_grad(grad, *axis, *before, inputs[0].shape()[*axis])]
            }
            Op::SumAxis { axis, .. } => vec![ops::sum_axis_grad(
                &squeeze_keepdim(grad, inputs[0].shape(), *axis),
                inputs[0].shape(),
                *axis,
            )],
            Op::MeanAxis { axis, .. } => vec![ops::mean_axis_grad(
                &squeeze_keepdim(grad, inputs[0].shape(), *axis),
                inputs[0].shape(),
                *axis,
            )],
            Op::SumAll => vec![ops::sum_all_grad(grad, inputs[0].shape())],
            Op::MeanAll => vec![ops::mean_all_grad(grad, inputs[0].shape())],
            Op::TemporalConv { dilation } => vec![
                ops::temporal_conv_grad_x(grad, inputs[1], inputs[0].shape(), *dilation),
                ops::temporal_conv_grad_w(grad, inputs[0], inputs[1].shape(), *dilation),
            ],
        }
    }
}

/// `sum_axis_grad` expects the reduced (no-keepdim) layout; flatten a kept
/// axis of length 1 if present. The buffer is identical either way.
fn squeeze_keepdim(grad: &Tensor, input_shape: &[usize], axis: usize) -> Tensor {
    if grad.rank() == input_shape.len() {
        let mut s = grad.shape().to_vec();
        s.remove(axis);
        if s.is_empty() {
            s.push(1);
        }
        grad.clone().reshaped(s)
    } else {
        grad.clone()
    }
}
