//! `Var`: a handle to one node of a [`Tape`], with the full op surface.

use crate::{Op, Tape};
use cts_tensor::{ops, Shape, Tensor};

/// A differentiable value on a [`Tape`].
///
/// Cloning is cheap (an index plus an `Rc`). All arithmetic records a new
/// node on the same tape; mixing variables from different tapes panics.
#[derive(Clone)]
pub struct Var {
    pub(crate) id: usize,
    pub(crate) tape: Tape,
}

impl Var {
    /// Copy of this node's forward value.
    pub fn value(&self) -> Tensor {
        self.tape.inner.borrow().nodes[self.id].value.clone()
    }

    /// Shape of the forward value without cloning the buffer.
    pub fn shape(&self) -> Shape {
        self.tape.inner.borrow().nodes[self.id].value.shape().into()
    }

    /// The tape this variable lives on.
    pub fn tape(&self) -> &Tape {
        &self.tape
    }

    /// Stop gradients: a constant leaf holding this node's current value.
    pub fn detach(&self) -> Var {
        self.tape.constant(self.value())
    }

    fn unary(&self, op: Op, value: Tensor) -> Var {
        self.tape.push_op(op, &[self.id], value)
    }

    fn binary(&self, other: &Var, op: Op, value: Tensor) -> Var {
        assert!(
            std::rc::Rc::ptr_eq(&self.tape.inner, &other.tape.inner),
            "vars from different tapes"
        );
        self.tape.push_op(op, &[self.id, other.id], value)
    }

    /// Apply `f` to the raw forward values of `self` and `other`.
    fn with_values2<R>(&self, other: &Var, f: impl FnOnce(&Tensor, &Tensor) -> R) -> R {
        let inner = self.tape.inner.borrow();
        f(&inner.nodes[self.id].value, &inner.nodes[other.id].value)
    }

    fn with_value<R>(&self, f: impl FnOnce(&Tensor) -> R) -> R {
        let inner = self.tape.inner.borrow();
        f(&inner.nodes[self.id].value)
    }

    // -- elementwise binary ------------------------------------------------

    /// `self + other` (broadcasting).
    pub fn add(&self, other: &Var) -> Var {
        let v = self.with_values2(other, ops::add);
        self.binary(other, Op::Add, v)
    }

    /// `self - other` (broadcasting).
    pub fn sub(&self, other: &Var) -> Var {
        let v = self.with_values2(other, ops::sub);
        self.binary(other, Op::Sub, v)
    }

    /// `self * other` (broadcasting).
    pub fn mul(&self, other: &Var) -> Var {
        let v = self.with_values2(other, ops::mul);
        self.binary(other, Op::Mul, v)
    }

    /// `self / other` (broadcasting).
    pub fn div(&self, other: &Var) -> Var {
        let v = self.with_values2(other, ops::div);
        self.binary(other, Op::Div, v)
    }

    // -- elementwise unary -------------------------------------------------

    /// Negation.
    pub fn neg(&self) -> Var {
        let v = self.with_value(ops::neg);
        self.unary(Op::Neg, v)
    }

    /// Multiply by scalar `c`.
    pub fn scale(&self, c: f32) -> Var {
        let v = self.with_value(|a| ops::scale(a, c));
        self.unary(Op::Scale(c), v)
    }

    /// Add scalar `c`.
    pub fn add_scalar(&self, c: f32) -> Var {
        let v = self.with_value(|a| ops::add_scalar(a, c));
        self.unary(Op::AddScalar(c), v)
    }

    /// ReLU.
    pub fn relu(&self) -> Var {
        let v = self.with_value(ops::relu);
        self.unary(Op::Relu, v)
    }

    /// Sigmoid.
    pub fn sigmoid(&self) -> Var {
        let v = self.with_value(ops::sigmoid);
        self.unary(Op::Sigmoid, v)
    }

    /// Tanh.
    pub fn tanh(&self) -> Var {
        let v = self.with_value(ops::tanh);
        self.unary(Op::Tanh, v)
    }

    /// Exponential.
    pub fn exp(&self) -> Var {
        let v = self.with_value(ops::exp);
        self.unary(Op::Exp, v)
    }

    /// Natural log (caller guarantees positivity; see [`Var::clamp`]).
    pub fn ln(&self) -> Var {
        let v = self.with_value(ops::ln);
        self.unary(Op::Ln, v)
    }

    /// Square root.
    pub fn sqrt(&self) -> Var {
        let v = self.with_value(ops::sqrt);
        self.unary(Op::Sqrt, v)
    }

    /// Absolute value.
    pub fn abs(&self) -> Var {
        let v = self.with_value(ops::abs);
        self.unary(Op::Abs, v)
    }

    /// Elementwise square.
    pub fn square(&self) -> Var {
        let v = self.with_value(ops::square);
        self.unary(Op::Square, v)
    }

    /// GELU activation.
    pub fn gelu(&self) -> Var {
        let v = self.with_value(ops::gelu);
        self.unary(Op::Gelu, v)
    }

    /// Clamp into `[lo, hi]` (gradient zero outside).
    pub fn clamp(&self, lo: f32, hi: f32) -> Var {
        let v = self.with_value(|a| ops::clamp(a, lo, hi));
        self.unary(Op::Clamp(lo, hi), v)
    }

    // -- softmax / matmul ----------------------------------------------------

    /// Softmax over the last axis.
    pub fn softmax_last(&self) -> Var {
        let v = self.with_value(ops::softmax_last);
        self.unary(Op::SoftmaxLast, v)
    }

    /// Temperature softmax over the last axis: `softmax(x / tau)`.
    pub fn softmax_last_with_temperature(&self, tau: f32) -> Var {
        self.scale(1.0 / tau).softmax_last()
    }

    /// Batched matrix multiplication over the trailing two dims.
    pub fn matmul(&self, other: &Var) -> Var {
        let v = self.with_values2(other, ops::matmul);
        self.binary(other, Op::MatMul, v)
    }

    // -- shape ---------------------------------------------------------------

    /// Permute dimensions.
    pub fn permute(&self, perm: &[usize]) -> Var {
        let v = self.with_value(|a| ops::permute(a, perm));
        self.unary(Op::Permute(perm.into()), v)
    }

    /// Reshape to `shape` (same element count).
    pub fn reshape(&self, shape: &[usize]) -> Var {
        let v = self.with_value(|a| a.clone().reshaped(shape));
        self.unary(Op::Reshape, v)
    }

    /// Concatenate along `axis`. All vars must share a tape.
    pub fn concat(parts: &[Var], axis: usize) -> Var {
        assert!(!parts.is_empty(), "concat of zero vars");
        let tape = parts[0].tape.clone();
        let value = {
            let inner = tape.inner.borrow();
            let tensors: Vec<&Tensor> = parts.iter().map(|p| &inner.nodes[p.id].value).collect();
            ops::concat(&tensors, axis)
        };
        let ids: Vec<usize> = parts.iter().map(|p| p.id).collect();
        tape.push_op(Op::Concat { axis }, &ids, value)
    }

    /// Slice `[start, end)` along `axis`.
    pub fn slice(&self, axis: usize, start: usize, end: usize) -> Var {
        let v = self.with_value(|a| ops::slice(a, axis, start, end));
        self.unary(Op::Slice { axis, start }, v)
    }

    /// Gather `indices` along `axis`.
    pub fn index_select(&self, axis: usize, indices: &[usize]) -> Var {
        let v = self.with_value(|a| ops::index_select(a, axis, indices));
        self.unary(
            Op::IndexSelect {
                axis,
                indices: indices.to_vec(),
            },
            v,
        )
    }

    /// Zero-pad along `axis`.
    pub fn pad_axis(&self, axis: usize, before: usize, after: usize) -> Var {
        let v = self.with_value(|a| ops::pad_axis(a, axis, before, after));
        self.unary(Op::PadAxis { axis, before, after }, v)
    }

    // -- reductions ------------------------------------------------------------

    /// Sum over `axis`.
    pub fn sum_axis(&self, axis: usize, keepdim: bool) -> Var {
        let v = self.with_value(|a| ops::sum_axis(a, axis, keepdim));
        self.unary(Op::SumAxis { axis, keepdim }, v)
    }

    /// Mean over `axis`.
    pub fn mean_axis(&self, axis: usize, keepdim: bool) -> Var {
        let v = self.with_value(|a| ops::mean_axis(a, axis, keepdim));
        self.unary(Op::MeanAxis { axis, keepdim }, v)
    }

    /// Sum of all elements (shape `[1]`).
    pub fn sum_all(&self) -> Var {
        let v = self.with_value(ops::sum_all);
        self.unary(Op::SumAll, v)
    }

    /// Mean of all elements (shape `[1]`).
    pub fn mean_all(&self) -> Var {
        let v = self.with_value(ops::mean_all);
        self.unary(Op::MeanAll, v)
    }

    // -- convolution ----------------------------------------------------------

    /// Dilated causal temporal convolution; `self` is `[B,N,T,Din]`, the
    /// kernel is `[K,Din,Dout]`.
    pub fn temporal_conv(&self, kernel: &Var, dilation: usize) -> Var {
        let v = self.with_values2(kernel, |x, w| ops::temporal_conv(x, w, dilation));
        self.binary(kernel, Op::TemporalConv { dilation }, v)
    }
}

macro_rules! impl_binop {
    ($trait:ident, $fn:ident, $method:ident) => {
        impl std::ops::$trait for &Var {
            type Output = Var;
            fn $fn(self, rhs: &Var) -> Var {
                self.$method(rhs)
            }
        }
        impl std::ops::$trait for Var {
            type Output = Var;
            fn $fn(self, rhs: Var) -> Var {
                Var::$method(&self, &rhs)
            }
        }
    };
}

impl_binop!(Add, add, add);
impl_binop!(Sub, sub, sub);
impl_binop!(Mul, mul, mul);
impl_binop!(Div, div, div);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Parameter;

    #[test]
    fn operator_overloads() {
        let tape = Tape::new();
        let a = tape.constant(Tensor::scalar(4.0));
        let b = tape.constant(Tensor::scalar(2.0));
        assert_eq!((&a + &b).value().item(), 6.0);
        assert_eq!((&a - &b).value().item(), 2.0);
        assert_eq!((&a * &b).value().item(), 8.0);
        assert_eq!((&a / &b).value().item(), 2.0);
    }

    #[test]
    fn chained_shape_ops_grad() {
        // sum(permute(reshape(x))) == sum(x); gradient should be all ones.
        let p = Parameter::new("x", Tensor::from_vec([2, 3], (0..6).map(|i| i as f32).collect::<Vec<_>>()));
        let tape = Tape::new();
        let x = tape.param(&p);
        let y = x.reshape(&[3, 2]).permute(&[1, 0]).sum_all();
        tape.backward(&y);
        assert_eq!(p.grad().data(), &[1.0; 6]);
        assert_eq!(y.value().item(), 15.0);
    }

    #[test]
    fn concat_routes_gradients() {
        let p = Parameter::new("a", Tensor::from_vec([1, 2], vec![1.0, 2.0]));
        let q = Parameter::new("b", Tensor::from_vec([1, 3], vec![3.0, 4.0, 5.0]));
        let tape = Tape::new();
        let a = tape.param(&p);
        let b = tape.param(&q);
        let c = Var::concat(&[a, b], 1);
        // weight the concat so the two parts get distinct grads
        let w = tape.constant(Tensor::from_vec([1, 5], vec![1.0, 1.0, 2.0, 2.0, 2.0]));
        let y = c.mul(&w).sum_all();
        tape.backward(&y);
        assert_eq!(p.grad().data(), &[1.0, 1.0]);
        assert_eq!(q.grad().data(), &[2.0, 2.0, 2.0]);
    }

    #[test]
    fn detach_blocks_gradient() {
        let p = Parameter::new("x", Tensor::scalar(3.0));
        let tape = Tape::new();
        let x = tape.param(&p);
        let y = x.detach().mul(&x); // d/dx = detached value = 3
        tape.backward(&y);
        assert_eq!(p.grad().item(), 3.0);
    }

    #[test]
    fn temperature_softmax_sharpens() {
        let tape = Tape::new();
        let x = tape.constant(Tensor::from_vec([1, 3], vec![1.0, 2.0, 3.0]));
        let soft = x.softmax_last_with_temperature(5.0).value();
        let sharp = x.softmax_last_with_temperature(0.1).value();
        assert!(sharp.data()[2] > soft.data()[2]);
        assert!(sharp.data()[2] > 0.99);
    }

    #[test]
    fn softmax_temperature_gradients_flow() {
        let p = Parameter::new("alpha", Tensor::from_vec([1, 3], vec![0.1, 0.2, 0.3]));
        let tape = Tape::new();
        let a = tape.param(&p);
        let w = tape.constant(Tensor::from_vec([1, 3], vec![1.0, 0.0, 0.0]));
        let y = a.softmax_last_with_temperature(0.5).mul(&w).sum_all();
        tape.backward(&y);
        let g = p.grad();
        assert!(g.data()[0] > 0.0); // raising alpha_0 raises its prob
        assert!(g.data()[1] < 0.0 && g.data()[2] < 0.0);
    }
}
