//! Finite-difference gradient checking.
//!
//! Used by unit and property tests across the workspace to validate every
//! operator's backward pass against a central-difference approximation.

use crate::{Parameter, Tape, Var};
use cts_tensor::Tensor;

/// Result of a gradient check: worst absolute and relative error observed.
#[derive(Debug, Clone, Copy)]
pub struct GradCheckReport {
    /// Largest absolute difference between analytic and numeric gradients.
    pub max_abs_err: f32,
    /// Largest relative difference (normalised by magnitude, floor 1).
    pub max_rel_err: f32,
}

impl GradCheckReport {
    /// True when both error measures are below `tol`.
    pub fn passes(&self, tol: f32) -> bool {
        self.max_abs_err <= tol || self.max_rel_err <= tol
    }
}

/// Compare analytic gradients of `f` w.r.t. `params` against central
/// finite differences with step `eps`.
///
/// `f` must build a scalar loss (shape `[1]`) on the provided tape each time
/// it is called. Parameter values are restored afterwards.
pub fn check_gradients(
    params: &[Parameter],
    eps: f32,
    f: impl Fn(&Tape) -> Var,
) -> GradCheckReport {
    // Analytic pass.
    for p in params {
        p.zero_grad();
    }
    let tape = Tape::new();
    let loss = f(&tape);
    assert_eq!(loss.value().len(), 1, "gradcheck needs a scalar loss");
    tape.backward(&loss);
    let analytic: Vec<Tensor> = params.iter().map(|p| p.grad().clone()).collect();

    let mut max_abs = 0.0f32;
    let mut max_rel = 0.0f32;
    for (pi, p) in params.iter().enumerate() {
        let n = p.len();
        for idx in 0..n {
            let orig = p.value().data()[idx];
            p.value_mut().data_mut()[idx] = orig + eps;
            let plus = f(&Tape::new()).value().item();
            p.value_mut().data_mut()[idx] = orig - eps;
            let minus = f(&Tape::new()).value().item();
            p.value_mut().data_mut()[idx] = orig;
            let numeric = (plus - minus) / (2.0 * eps);
            let a = analytic[pi].data()[idx];
            let abs = (a - numeric).abs();
            let rel = abs / numeric.abs().max(a.abs()).max(1.0);
            max_abs = max_abs.max(abs);
            max_rel = max_rel.max(rel);
        }
    }
    GradCheckReport {
        max_abs_err: max_abs,
        max_rel_err: max_rel,
    }
}

/// Convenience assertion wrapper for tests.
pub fn assert_gradients(params: &[Parameter], eps: f32, tol: f32, f: impl Fn(&Tape) -> Var) {
    let report = check_gradients(params, eps, f);
    assert!(
        report.passes(tol),
        "gradient check failed: {:?} (tol {})",
        report,
        tol
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catches_correct_gradient() {
        let p = Parameter::new("x", Tensor::from_vec([3], vec![0.5, -0.3, 1.2]));
        assert_gradients(std::slice::from_ref(&p), 1e-3, 1e-2, |tape| {
            tape.param(&p).square().sum_all()
        });
    }

    #[test]
    fn reports_wrong_gradient() {
        // sabotage: compute loss on a detached path so analytic grad is 0,
        // numeric is not.
        let p = Parameter::new("x", Tensor::from_vec([2], vec![1.0, 2.0]));
        let report = check_gradients(std::slice::from_ref(&p), 1e-3, |tape| {
            tape.param(&p).detach().square().sum_all()
        });
        assert!(!report.passes(1e-2));
    }
}
