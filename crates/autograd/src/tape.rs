//! The gradient tape: a per-forward-pass arena of operation nodes.

use crate::{Op, Parameter, Var};
use cts_tensor::Tensor;
use std::cell::RefCell;
use std::rc::Rc;

pub(crate) struct Node {
    pub value: Tensor,
    pub op: Op,
    pub inputs: Vec<usize>,
    pub param: Option<Parameter>,
    pub requires_grad: bool,
}

#[derive(Default)]
pub(crate) struct TapeInner {
    pub nodes: Vec<Node>,
}

/// A define-by-run gradient tape.
///
/// Create one per forward pass, record operations through [`Var`] methods,
/// call [`Tape::backward`] once, then drop it. Parameters created with
/// [`Parameter::new`] survive across tapes and accumulate gradients.
#[derive(Clone, Default)]
pub struct Tape {
    pub(crate) inner: Rc<RefCell<TapeInner>>,
}

impl Tape {
    /// Fresh, empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded nodes (diagnostics / memory accounting).
    pub fn len(&self) -> usize {
        self.inner.borrow().nodes.len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Record a non-trainable input (data, masks, adjacency matrices).
    pub fn constant(&self, value: Tensor) -> Var {
        self.push_node(value, Op::Leaf, vec![], None, false)
    }

    /// Record a trainable leaf bound to `param`; gradients flow into the
    /// parameter's grad buffer on [`Tape::backward`].
    pub fn param(&self, param: &Parameter) -> Var {
        let value = param.value().clone();
        self.push_node(value, Op::Leaf, vec![], Some(param.clone()), true)
    }

    /// Total number of activation scalars held by the tape (memory proxy).
    pub fn activation_scalars(&self) -> usize {
        self.inner.borrow().nodes.iter().map(|n| n.value.len()).sum()
    }

    pub(crate) fn push_node(
        &self,
        value: Tensor,
        op: Op,
        inputs: Vec<usize>,
        param: Option<Parameter>,
        requires_grad: bool,
    ) -> Var {
        // Non-finite forward values are deliberately *not* asserted here:
        // transient NaN/∞ blow-ups during training are the divergence
        // watchdog's job (`cts_nn::WatchdogConfig`), which rolls the run
        // back instead of crashing it.
        let mut inner = self.inner.borrow_mut();
        let id = inner.nodes.len();
        inner.nodes.push(Node {
            value,
            op,
            inputs,
            param,
            requires_grad,
        });
        Var {
            id,
            tape: self.clone(),
        }
    }

    /// Record an op. Forward value must be precomputed by the caller
    /// ([`Var`] methods do this), keeping the borrow windows short.
    pub(crate) fn push_op(&self, op: Op, inputs: &[usize], value: Tensor) -> Var {
        let requires_grad = {
            let inner = self.inner.borrow();
            inputs.iter().any(|&i| inner.nodes[i].requires_grad)
        };
        self.push_node(value, op, inputs.to_vec(), None, requires_grad)
    }

    /// Reverse-mode sweep from `root`, accumulating into every reachable
    /// [`Parameter`]'s grad buffer.
    ///
    /// The seed gradient is all-ones (use a scalar loss for standard
    /// training). Gradients of non-`requires_grad` subtrees are skipped.
    pub fn backward(&self, root: &Var) {
        assert!(
            Rc::ptr_eq(&self.inner, &root.tape.inner),
            "backward root from another tape"
        );
        let inner = self.inner.borrow();
        let n = root.id + 1;
        let mut grads: Vec<Option<Tensor>> = vec![None; n];
        grads[root.id] = Some(Tensor::ones(inner.nodes[root.id].value.shape().to_vec()));

        for id in (0..n).rev() {
            let Some(grad) = grads[id].take() else {
                continue;
            };
            let node = &inner.nodes[id];
            if !node.requires_grad {
                continue;
            }
            if let Some(p) = &node.param {
                p.accumulate_grad(&grad);
                continue;
            }
            if node.inputs.is_empty() {
                continue;
            }
            let input_values: Vec<&Tensor> =
                node.inputs.iter().map(|&i| &inner.nodes[i].value).collect();
            let input_grads = node.op.backward(&grad, &node.value, &input_values);
            debug_assert_eq!(input_grads.len(), node.inputs.len());
            for (&input_id, g) in node.inputs.iter().zip(input_grads) {
                if !inner.nodes[input_id].requires_grad {
                    continue;
                }
                match &mut grads[input_id] {
                    Some(acc) => acc.axpy(1.0, &g),
                    slot @ None => *slot = Some(g),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_has_no_grad_flow() {
        let tape = Tape::new();
        let c = tape.constant(Tensor::scalar(3.0));
        let y = c.square();
        tape.backward(&y); // must not panic; nothing requires grad
        assert_eq!(y.value().item(), 9.0);
    }

    #[test]
    fn param_receives_gradient() {
        let p = Parameter::new("p", Tensor::scalar(3.0));
        let tape = Tape::new();
        let x = tape.param(&p);
        let y = x.square(); // dy/dp = 2p = 6
        tape.backward(&y);
        assert_eq!(p.grad().item(), 6.0);
    }

    #[test]
    fn grads_accumulate_across_tapes() {
        let p = Parameter::new("p", Tensor::scalar(2.0));
        for _ in 0..3 {
            let tape = Tape::new();
            let y = tape.param(&p).scale(4.0);
            tape.backward(&y);
        }
        assert_eq!(p.grad().item(), 12.0);
    }

    #[test]
    fn diamond_reuse_sums_gradients() {
        // y = x*x + x  => dy/dx = 2x + 1
        let p = Parameter::new("x", Tensor::scalar(5.0));
        let tape = Tape::new();
        let x = tape.param(&p);
        let y = x.mul(&x).add(&x);
        tape.backward(&y);
        assert_eq!(p.grad().item(), 11.0);
    }

    #[test]
    fn param_used_twice_via_two_leaves() {
        // Same parameter pushed as two leaves still accumulates both paths.
        let p = Parameter::new("x", Tensor::scalar(3.0));
        let tape = Tape::new();
        let a = tape.param(&p);
        let b = tape.param(&p);
        let y = a.mul(&b); // x^2, dy/dx = 2x = 6
        tape.backward(&y);
        assert_eq!(p.grad().item(), 6.0);
    }

    #[test]
    fn backward_only_touches_ancestors() {
        let p = Parameter::new("p", Tensor::scalar(1.0));
        let tape = Tape::new();
        let x = tape.param(&p);
        let y = x.scale(2.0);
        let _unused = x.scale(100.0); // recorded later, not an ancestor of y
        tape.backward(&y);
        assert_eq!(p.grad().item(), 2.0);
    }
}
