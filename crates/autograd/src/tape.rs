//! The gradient tape: a per-forward-pass arena of operation nodes.

use crate::{Op, Parameter, Var};
use cts_tensor::{Shape, Tensor};
use std::cell::RefCell;
use std::rc::Rc;

pub(crate) struct Node {
    pub value: Tensor,
    pub op: Op,
    // Input node ids. `Shape` is cts-tensor's inline usize vector; node
    // fan-in is almost always <= 2, so ids live inline with the node
    // instead of in a per-node heap Vec.
    pub inputs: Shape,
    pub param: Option<Parameter>,
    pub requires_grad: bool,
}

#[derive(Default)]
pub(crate) struct TapeInner {
    pub nodes: Vec<Node>,
}

// Node storage recycled across tapes on this thread: a training loop
// records one tape per step with an essentially identical node population,
// so reusing the backing vectors removes the per-step grow-by-doubling
// reallocations of `nodes` (and `grads` in [`Tape::backward`]).
const TAPE_STORE_CAP: usize = 4;

thread_local! {
    static TAPE_STORE: RefCell<Vec<Vec<Node>>> = const { RefCell::new(Vec::new()) };
    static GRADS_STORE: RefCell<Vec<Option<Tensor>>> = const { RefCell::new(Vec::new()) };
}

impl Drop for TapeInner {
    fn drop(&mut self) {
        let mut nodes = std::mem::take(&mut self.nodes);
        // Drop the recorded values *now* so their buffers go back to the
        // arena, then cache the empty vector for the next tape.
        nodes.clear();
        // try_with: never panic if the thread is already tearing down TLS.
        let _ = TAPE_STORE.try_with(|s| {
            let mut s = s.borrow_mut();
            if s.len() < TAPE_STORE_CAP {
                s.push(nodes);
            }
        });
    }
}

/// A define-by-run gradient tape.
///
/// Create one per forward pass, record operations through [`Var`] methods,
/// call [`Tape::backward`] once, then drop it. Parameters created with
/// [`Parameter::new`] survive across tapes and accumulate gradients.
#[derive(Clone, Default)]
pub struct Tape {
    pub(crate) inner: Rc<RefCell<TapeInner>>,
}

impl Tape {
    /// Fresh, empty tape (reusing node storage recycled on this thread).
    pub fn new() -> Self {
        let nodes = TAPE_STORE
            .with(|s| s.borrow_mut().pop())
            .unwrap_or_default();
        Self {
            inner: Rc::new(RefCell::new(TapeInner { nodes })),
        }
    }

    /// Number of recorded nodes (diagnostics / memory accounting).
    pub fn len(&self) -> usize {
        self.inner.borrow().nodes.len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Record a non-trainable input (data, masks, adjacency matrices).
    pub fn constant(&self, value: Tensor) -> Var {
        self.push_node(value, Op::Leaf, Shape::default(), None, false)
    }

    /// Record a trainable leaf bound to `param`; gradients flow into the
    /// parameter's grad buffer on [`Tape::backward`].
    pub fn param(&self, param: &Parameter) -> Var {
        let value = param.value().clone();
        self.push_node(value, Op::Leaf, Shape::default(), Some(param.clone()), true)
    }

    /// Total number of activation scalars held by the tape (memory proxy).
    pub fn activation_scalars(&self) -> usize {
        self.inner.borrow().nodes.iter().map(|n| n.value.len()).sum()
    }

    pub(crate) fn push_node(
        &self,
        value: Tensor,
        op: Op,
        inputs: Shape,
        param: Option<Parameter>,
        requires_grad: bool,
    ) -> Var {
        // Non-finite forward values are deliberately *not* asserted here:
        // transient NaN/∞ blow-ups during training are the divergence
        // watchdog's job (`cts_nn::WatchdogConfig`), which rolls the run
        // back instead of crashing it.
        let mut inner = self.inner.borrow_mut();
        let id = inner.nodes.len();
        inner.nodes.push(Node {
            value,
            op,
            inputs,
            param,
            requires_grad,
        });
        Var {
            id,
            tape: self.clone(),
        }
    }

    /// Record an op. Forward value must be precomputed by the caller
    /// ([`Var`] methods do this), keeping the borrow windows short.
    pub(crate) fn push_op(&self, op: Op, inputs: &[usize], value: Tensor) -> Var {
        let requires_grad = {
            let inner = self.inner.borrow();
            inputs.iter().any(|&i| inner.nodes[i].requires_grad)
        };
        self.push_node(value, op, inputs.into(), None, requires_grad)
    }

    /// Audit hook for static gradient-reachability analysis: the set of
    /// [`Parameter`]s a backward sweep from `root` would actually deliver a
    /// (structurally) non-zero gradient to.
    ///
    /// Mirrors [`Tape::backward`]'s traversal — same ancestor walk, same
    /// `requires_grad` pruning — but additionally prunes edges through
    /// `Op::Scale(0.0)` nodes, whose backward is *exactly* zero (the `zero`
    /// operator of the search space is implemented as `scale(0.0)`).
    /// `cts-verify` cross-checks its static liveness pass against this.
    /// Parameters are deduplicated by identity, in first-visit order.
    pub fn reachable_params(&self, root: &Var) -> Vec<Parameter> {
        assert!(
            Rc::ptr_eq(&self.inner, &root.tape.inner),
            "reachability root from another tape"
        );
        let inner = self.inner.borrow();
        let n = root.id + 1;
        let mut live = vec![false; n];
        live[root.id] = true;
        let mut params: Vec<Parameter> = Vec::new();
        for id in (0..n).rev() {
            if !live[id] {
                continue;
            }
            let node = &inner.nodes[id];
            if !node.requires_grad {
                continue;
            }
            if let Some(p) = &node.param {
                if !params.iter().any(|q| q.ptr_eq(p)) {
                    params.push(p.clone());
                }
                continue;
            }
            // A scale-by-zero node multiplies every upstream gradient by
            // 0.0 exactly; nothing behind it is reachable through it.
            if matches!(node.op, Op::Scale(c) if c == 0.0) {
                continue;
            }
            for &input_id in &node.inputs {
                live[input_id] = true;
            }
        }
        params
    }

    /// Reverse-mode sweep from `root`, accumulating into every reachable
    /// [`Parameter`]'s grad buffer.
    ///
    /// The seed gradient is all-ones (use a scalar loss for standard
    /// training). Gradients of non-`requires_grad` subtrees are skipped.
    pub fn backward(&self, root: &Var) {
        assert!(
            Rc::ptr_eq(&self.inner, &root.tape.inner),
            "backward root from another tape"
        );
        let inner = self.inner.borrow();
        let n = root.id + 1;
        let mut grads = GRADS_STORE.with(|s| std::mem::take(&mut *s.borrow_mut()));
        grads.clear();
        grads.resize_with(n, || None);
        grads[root.id] = Some(Tensor::ones(inner.nodes[root.id].value.shape()));

        // Memory-profile counters (only walked when metrics are on: the
        // activation sum and live-gradient tracking are O(n) bookkeeping
        // that pure training runs should not pay).
        let metrics = cts_obs::metrics_enabled();
        let activation_scalars: u64 = if metrics {
            inner.nodes.iter().map(|nd| nd.value.len() as u64).sum()
        } else {
            0
        };
        let mut live_grad_scalars: u64 = if metrics {
            inner.nodes[root.id].value.len() as u64
        } else {
            0
        };
        let mut peak_grad_scalars = live_grad_scalars;

        // Scratch for per-node input views, reused across the whole sweep.
        let mut input_values: Vec<&Tensor> = Vec::new();
        for id in (0..n).rev() {
            let Some(grad) = grads[id].take() else {
                continue;
            };
            if metrics {
                live_grad_scalars -= grad.len() as u64;
            }
            let node = &inner.nodes[id];
            if !node.requires_grad {
                continue;
            }
            if let Some(p) = &node.param {
                p.accumulate_grad(&grad);
                continue;
            }
            if node.inputs.is_empty() {
                continue;
            }
            input_values.clear();
            input_values.extend(node.inputs.iter().map(|&i| &inner.nodes[i].value));
            let input_grads = node.op.backward(&grad, &node.value, &input_values);
            debug_assert_eq!(input_grads.len(), node.inputs.len());
            for (&input_id, g) in node.inputs.iter().zip(input_grads) {
                if !inner.nodes[input_id].requires_grad {
                    continue;
                }
                match &mut grads[input_id] {
                    Some(acc) => acc.axpy(1.0, &g),
                    slot @ None => {
                        if metrics {
                            live_grad_scalars += g.len() as u64;
                            peak_grad_scalars = peak_grad_scalars.max(live_grad_scalars);
                        }
                        *slot = Some(g);
                    }
                }
            }
        }
        cts_obs::tape::record_backward(n as u64, activation_scalars, peak_grad_scalars);
        grads.clear();
        let _ = GRADS_STORE.try_with(|s| *s.borrow_mut() = grads);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_has_no_grad_flow() {
        let tape = Tape::new();
        let c = tape.constant(Tensor::scalar(3.0));
        let y = c.square();
        tape.backward(&y); // must not panic; nothing requires grad
        assert_eq!(y.value().item(), 9.0);
    }

    #[test]
    fn param_receives_gradient() {
        let p = Parameter::new("p", Tensor::scalar(3.0));
        let tape = Tape::new();
        let x = tape.param(&p);
        let y = x.square(); // dy/dp = 2p = 6
        tape.backward(&y);
        assert_eq!(p.grad().item(), 6.0);
    }

    #[test]
    fn grads_accumulate_across_tapes() {
        let p = Parameter::new("p", Tensor::scalar(2.0));
        for _ in 0..3 {
            let tape = Tape::new();
            let y = tape.param(&p).scale(4.0);
            tape.backward(&y);
        }
        assert_eq!(p.grad().item(), 12.0);
    }

    #[test]
    fn diamond_reuse_sums_gradients() {
        // y = x*x + x  => dy/dx = 2x + 1
        let p = Parameter::new("x", Tensor::scalar(5.0));
        let tape = Tape::new();
        let x = tape.param(&p);
        let y = x.mul(&x).add(&x);
        tape.backward(&y);
        assert_eq!(p.grad().item(), 11.0);
    }

    #[test]
    fn param_used_twice_via_two_leaves() {
        // Same parameter pushed as two leaves still accumulates both paths.
        let p = Parameter::new("x", Tensor::scalar(3.0));
        let tape = Tape::new();
        let a = tape.param(&p);
        let b = tape.param(&p);
        let y = a.mul(&b); // x^2, dy/dx = 2x = 6
        tape.backward(&y);
        assert_eq!(p.grad().item(), 6.0);
    }

    #[test]
    fn backward_only_touches_ancestors() {
        let p = Parameter::new("p", Tensor::scalar(1.0));
        let tape = Tape::new();
        let x = tape.param(&p);
        let y = x.scale(2.0);
        let _unused = x.scale(100.0); // recorded later, not an ancestor of y
        tape.backward(&y);
        assert_eq!(p.grad().item(), 2.0);
    }

    #[test]
    fn reachable_params_matches_backward() {
        let a = Parameter::new("a", Tensor::scalar(1.0));
        let b = Parameter::new("b", Tensor::scalar(2.0));
        let c = Parameter::new("c", Tensor::scalar(3.0));
        let tape = Tape::new();
        let x = tape.param(&a).mul(&tape.param(&b));
        let _dangling = tape.param(&c).scale(4.0); // never feeds the loss
        let loss = x.sum_all();
        let live = tape.reachable_params(&loss);
        assert_eq!(live.len(), 2);
        assert!(live.iter().any(|p| p.ptr_eq(&a)));
        assert!(live.iter().any(|p| p.ptr_eq(&b)));
        assert!(!live.iter().any(|p| p.ptr_eq(&c)));
    }

    #[test]
    fn reachable_params_prunes_scale_zero_paths() {
        // The search space's `zero` operator is scale(0.0): its backward is
        // exactly zero, so parameters behind it are gradient-starved.
        let dead = Parameter::new("dead", Tensor::scalar(1.0));
        let live = Parameter::new("live", Tensor::scalar(2.0));
        let tape = Tape::new();
        let killed = tape.param(&dead).square().scale(0.0);
        let loss = killed.add(&tape.param(&live)).sum_all();
        let reach = tape.reachable_params(&loss);
        assert_eq!(reach.len(), 1);
        assert!(reach[0].ptr_eq(&live));
        // scale by a non-zero constant keeps the path alive
        let tape2 = Tape::new();
        let loss2 = tape2.param(&dead).scale(0.5).sum_all();
        assert_eq!(tape2.reachable_params(&loss2).len(), 1);
        // and backward agrees: the dead param's grad is exactly zero
        tape.backward(&loss);
        assert_eq!(dead.grad().norm(), 0.0);
        assert!(live.grad().norm() > 0.0);
    }

    #[test]
    fn reachable_params_dedupes_shared_leaves() {
        let p = Parameter::new("p", Tensor::scalar(3.0));
        let tape = Tape::new();
        let a = tape.param(&p);
        let b = tape.param(&p);
        let loss = a.mul(&b).sum_all();
        assert_eq!(tape.reachable_params(&loss).len(), 1);
    }
}
