//! Finite-difference validation of every differentiable primitive.

use cts_autograd::gradcheck::assert_gradients;
use cts_autograd::{Parameter, Tape, Var};
use cts_tensor::{init, Tensor};
use rand::{rngs::SmallRng, SeedableRng};

const EPS: f32 = 1e-2;
const TOL: f32 = 2e-2;

fn param(name: &str, shape: &[usize], seed: u64) -> Parameter {
    let mut rng = SmallRng::seed_from_u64(seed);
    Parameter::new(name, init::uniform(&mut rng, shape.to_vec(), -0.9, 0.9))
}

/// Check one unary op through a sum-all loss.
fn check_unary(build: impl Fn(Var) -> Var, seed: u64) {
    let p = param("x", &[2, 3], seed);
    assert_gradients(std::slice::from_ref(&p), EPS, TOL, |tape| {
        build(tape.param(&p)).sum_all()
    });
}

#[test]
fn grad_relu() {
    // shift away from the kink at 0
    let p = param("x", &[2, 3], 1);
    assert_gradients(std::slice::from_ref(&p), 1e-3, TOL, |tape| {
        tape.param(&p).add_scalar(0.05).relu().sum_all()
    });
}

#[test]
fn grad_sigmoid() {
    check_unary(|x| x.sigmoid(), 2);
}

#[test]
fn grad_tanh() {
    check_unary(|x| x.tanh(), 3);
}

#[test]
fn grad_exp() {
    check_unary(|x| x.exp(), 4);
}

#[test]
fn grad_ln_of_positive() {
    let p = param("x", &[2, 2], 5);
    assert_gradients(std::slice::from_ref(&p), 1e-3, TOL, |tape| {
        tape.param(&p).mul(&tape.param(&p)).add_scalar(1.0).ln().sum_all()
    });
}

#[test]
fn grad_sqrt_of_positive() {
    let p = param("x", &[2, 2], 6);
    assert_gradients(std::slice::from_ref(&p), 1e-3, TOL, |tape| {
        tape.param(&p).square().add_scalar(0.5).sqrt().sum_all()
    });
}

#[test]
fn grad_abs_away_from_zero() {
    let p = Parameter::new("x", Tensor::from_vec([4], vec![0.5, -0.7, 1.2, -2.0]));
    assert_gradients(std::slice::from_ref(&p), 1e-3, TOL, |tape| tape.param(&p).abs().sum_all());
}

#[test]
fn grad_square() {
    check_unary(|x| x.square(), 7);
}

#[test]
fn grad_gelu() {
    check_unary(|x| x.gelu(), 8);
}

#[test]
fn grad_neg_scale_addscalar() {
    check_unary(|x| x.neg().scale(3.0).add_scalar(1.5), 9);
}

#[test]
fn grad_softmax_last() {
    let p = param("x", &[2, 4], 10);
    let w = Tensor::from_vec([2, 4], (1..=8).map(|i| i as f32).collect::<Vec<_>>());
    assert_gradients(std::slice::from_ref(&p), 1e-3, TOL, |tape| {
        let probs = tape.param(&p).softmax_last();
        probs.mul(&tape.constant(w.clone())).sum_all()
    });
}

#[test]
fn grad_softmax_with_temperature() {
    let p = param("x", &[1, 5], 11);
    let w = Tensor::from_vec([1, 5], vec![2.0, -1.0, 0.5, 3.0, 1.0]);
    assert_gradients(std::slice::from_ref(&p), 1e-3, TOL, |tape| {
        let probs = tape.param(&p).softmax_last_with_temperature(0.7);
        probs.mul(&tape.constant(w.clone())).sum_all()
    });
}

#[test]
fn grad_binary_ops_broadcast() {
    let a = param("a", &[2, 3], 12);
    let b = param("b", &[3], 13);
    assert_gradients(&[a.clone(), b.clone()], EPS, TOL, |tape| {
        let x = tape.param(&a);
        let y = tape.param(&b);
        (&x + &y).mul(&x.sub(&y)).sum_all()
    });
}

#[test]
fn grad_div_broadcast() {
    let a = param("a", &[2, 2], 14);
    let b = Parameter::new("b", Tensor::from_vec([2, 1], vec![1.5, 2.5]));
    assert_gradients(&[a.clone(), b.clone()], 1e-3, TOL, |tape| {
        tape.param(&a).div(&tape.param(&b)).sum_all()
    });
}

#[test]
fn grad_matmul_plain_and_batched() {
    let a = param("a", &[2, 3], 15);
    let b = param("b", &[3, 4], 16);
    assert_gradients(&[a.clone(), b.clone()], EPS, TOL, |tape| {
        tape.param(&a).matmul(&tape.param(&b)).sum_all()
    });

    let x = param("x", &[2, 2, 3], 17); // batch of 2
    let w = param("w", &[3, 2], 18); // shared weight broadcast over batch
    assert_gradients(&[x.clone(), w.clone()], EPS, TOL, |tape| {
        tape.param(&x).matmul(&tape.param(&w)).square().sum_all()
    });
}

#[test]
fn grad_permute_reshape() {
    let p = param("x", &[2, 3, 4], 19);
    let w = {
        let mut rng = SmallRng::seed_from_u64(20);
        init::uniform(&mut rng, [4, 3, 2], -1.0, 1.0)
    };
    assert_gradients(std::slice::from_ref(&p), EPS, TOL, |tape| {
        let x = tape.param(&p).permute(&[2, 1, 0]);
        x.mul(&tape.constant(w.clone())).sum_all()
    });
    assert_gradients(std::slice::from_ref(&p), EPS, TOL, |tape| {
        tape.param(&p).reshape(&[4, 6]).square().sum_all()
    });
}

#[test]
fn grad_concat_slice() {
    let a = param("a", &[2, 2], 21);
    let b = param("b", &[2, 3], 22);
    assert_gradients(&[a.clone(), b.clone()], EPS, TOL, |tape| {
        let c = Var::concat(&[tape.param(&a), tape.param(&b)], 1);
        c.slice(1, 1, 4).square().sum_all()
    });
}

#[test]
fn grad_index_select_with_repeats() {
    let p = param("x", &[4, 2], 23);
    assert_gradients(std::slice::from_ref(&p), EPS, TOL, |tape| {
        tape.param(&p)
            .index_select(0, &[0, 2, 2, 3])
            .square()
            .sum_all()
    });
}

#[test]
fn grad_pad_axis() {
    let p = param("x", &[1, 3], 24);
    assert_gradients(std::slice::from_ref(&p), EPS, TOL, |tape| {
        tape.param(&p).pad_axis(1, 2, 1).square().sum_all()
    });
}

#[test]
fn grad_reductions() {
    let p = param("x", &[2, 3, 2], 25);
    for (axis, keepdim) in [(0, false), (1, true), (2, false)] {
        assert_gradients(std::slice::from_ref(&p), EPS, TOL, |tape| {
            tape.param(&p).sum_axis(axis, keepdim).square().sum_all()
        });
        assert_gradients(std::slice::from_ref(&p), EPS, TOL, |tape| {
            tape.param(&p).mean_axis(axis, keepdim).square().sum_all()
        });
    }
    assert_gradients(std::slice::from_ref(&p), EPS, TOL, |tape| {
        tape.param(&p).mean_all().square().sum_all()
    });
}

#[test]
fn grad_temporal_conv() {
    let x = param("x", &[1, 2, 6, 3], 26);
    let w = param("w", &[2, 3, 2], 27);
    for dilation in [1, 2] {
        assert_gradients(&[x.clone(), w.clone()], EPS, TOL, |tape| {
            tape.param(&x)
                .temporal_conv(&tape.param(&w), dilation)
                .square()
                .sum_all()
        });
    }
}

#[test]
fn grad_composite_attention_like() {
    // A miniature scaled-dot-product attention: checks matmul + softmax +
    // permute composition end to end.
    let q = param("q", &[2, 3, 4], 30);
    let k = param("k", &[2, 3, 4], 31);
    let v = param("v", &[2, 3, 4], 32);
    assert_gradients(&[q.clone(), k.clone(), v.clone()], EPS, 5e-2, |tape| {
        let qv = tape.param(&q);
        let kv = tape.param(&k);
        let vv = tape.param(&v);
        let scores = qv.matmul(&kv.permute(&[0, 2, 1])).scale(0.5);
        scores.softmax_last().matmul(&vv).square().sum_all()
    });
}

#[test]
fn grad_composite_gated_tcn() {
    // GDCC-like gate: tanh(conv) * sigmoid(conv).
    let x = param("x", &[1, 2, 5, 2], 33);
    let w1 = param("w1", &[2, 2, 3], 34);
    let w2 = param("w2", &[2, 2, 3], 35);
    assert_gradients(&[x.clone(), w1.clone(), w2.clone()], EPS, 5e-2, |tape| {
        let xv = tape.param(&x);
        let filt = xv.temporal_conv(&tape.param(&w1), 1).tanh();
        let gate = xv.temporal_conv(&tape.param(&w2), 1).sigmoid();
        filt.mul(&gate).sum_all()
    });
}

mod properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Random elementwise expressions must pass gradcheck.
        #[test]
        fn random_elementwise_chain(seed in 0u64..5000) {
            let p = param("x", &[2, 2], seed);
            assert_gradients(std::slice::from_ref(&p), EPS, 5e-2, |tape| {
                let x = tape.param(&p);
                let y = x.tanh().mul(&x.sigmoid()).add(&x.scale(0.3));
                y.square().sum_all()
            });
        }

        /// softmax output always sums to 1 per row, regardless of scale.
        #[test]
        fn softmax_simplex(vals in proptest::collection::vec(-50f32..50.0, 6)) {
            let tape = Tape::new();
            let x = tape.constant(Tensor::from_vec([2, 3], vals));
            let y = x.softmax_last().value();
            for row in 0..2 {
                let s: f32 = y.data()[row * 3..(row + 1) * 3].iter().sum();
                prop_assert!((s - 1.0).abs() < 1e-5);
            }
        }

        /// sum_all after concat equals sum of parts (linearity).
        #[test]
        fn concat_preserves_sum(a in proptest::collection::vec(-10f32..10.0, 4),
                                b in proptest::collection::vec(-10f32..10.0, 6)) {
            let tape = Tape::new();
            let av = tape.constant(Tensor::from_vec([2, 2], a.clone()));
            let bv = tape.constant(Tensor::from_vec([2, 3], b.clone()));
            let c = Var::concat(&[av, bv], 1).sum_all().value().item();
            let expect: f32 = a.iter().sum::<f32>() + b.iter().sum::<f32>();
            prop_assert!((c - expect).abs() < 1e-3);
        }
    }
}
