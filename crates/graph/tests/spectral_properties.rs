//! Property-based tests of the spectral/diffusion machinery.
#![allow(clippy::needless_range_loop)]

use cts_graph::{
    chebyshev_basis, normalized_laplacian, random_geometric_graph, scaled_laplacian,
    transition_matrices, transition_powers, GraphGenConfig,
};
use cts_tensor::ops;
use proptest::prelude::*;
use rand::{rngs::SmallRng, SeedableRng};

fn graph_strategy() -> impl Strategy<Value = cts_graph::SensorGraph> {
    (4usize..12, 0u64..1000).prop_map(|(n, seed)| {
        let mut rng = SmallRng::seed_from_u64(seed);
        random_geometric_graph(
            &mut rng,
            &GraphGenConfig {
                n,
                sigma: 0.4,
                threshold: 0.2,
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The symmetric normalised Laplacian is symmetric.
    #[test]
    fn laplacian_is_symmetric(g in graph_strategy()) {
        let l = normalized_laplacian(g.adjacency());
        let lt = ops::transpose_last2(&l);
        prop_assert!(l.approx_eq(&lt, 1e-5));
    }

    /// L is positive semidefinite: xᵀLx >= 0 for random x (spot check).
    #[test]
    fn laplacian_psd(g in graph_strategy(), seed in 0u64..100) {
        let l = normalized_laplacian(g.adjacency());
        let n = g.n();
        let mut rng = SmallRng::seed_from_u64(seed);
        let x = cts_tensor::init::uniform(&mut rng, [n, 1], -1.0, 1.0);
        let xt_l_x = ops::matmul(&ops::transpose_last2(&x), &ops::matmul(&l, &x)).item();
        prop_assert!(xt_l_x >= -1e-4, "x'Lx = {xt_l_x}");
    }

    /// Scaled Laplacian keeps the spectral radius bounded: repeated
    /// application of L̃ to a unit vector never blows up.
    #[test]
    fn scaled_laplacian_bounded_dynamics(g in graph_strategy()) {
        let lt = scaled_laplacian(g.adjacency());
        let n = g.n();
        let mut v = cts_tensor::Tensor::zeros([n, 1]);
        v.data_mut()[0] = 1.0;
        for _ in 0..30 {
            v = ops::matmul(&lt, &v);
        }
        prop_assert!(v.norm() <= 3.0, "norm grew to {}", v.norm());
    }

    /// Chebyshev basis satisfies the three-term recurrence exactly.
    #[test]
    fn chebyshev_recurrence(g in graph_strategy()) {
        let basis = chebyshev_basis(g.adjacency(), 4);
        let lt = scaled_laplacian(g.adjacency());
        for k in 2..4 {
            let expect = ops::sub(
                &ops::scale(&ops::matmul(&lt, &basis[k - 1]), 2.0),
                &basis[k - 2],
            );
            prop_assert!(basis[k].approx_eq(&expect, 1e-3));
        }
    }

    /// Transition matrices are row-stochastic on connected rows, and so are
    /// their powers.
    #[test]
    fn transition_rows_stochastic(g in graph_strategy()) {
        let (fwd, bwd) = transition_matrices(g.adjacency());
        for p in [&fwd, &bwd] {
            for pk in transition_powers(p, 2).iter().skip(1) {
                for i in 0..g.n() {
                    let s: f32 = (0..g.n()).map(|j| pk.at(&[i, j])).sum();
                    prop_assert!(
                        (s - 1.0).abs() < 1e-4 || s.abs() < 1e-6,
                        "row {i} sums to {s}"
                    );
                }
            }
        }
    }

    /// Diffusion from a delta spreads mass only to reachable nodes.
    #[test]
    fn diffusion_respects_reachability(g in graph_strategy()) {
        let (fwd, _) = transition_matrices(g.adjacency());
        let p2 = &transition_powers(&fwd, 2)[2];
        let dist = g.hop_distances(0);
        for j in 0..g.n() {
            if p2.at(&[0, j]) > 1e-6 {
                prop_assert!(dist[j] != usize::MAX, "mass on unreachable node {j}");
            }
        }
    }
}
