//! The weighted sensor graph `G = (V, E, A)`.

use cts_tensor::Tensor;

/// A weighted, possibly directed sensor graph over `N` time series.
///
/// `adjacency[i][j]` is the spatial-correlation strength of the edge
/// `i → j` (row-normalisable). Sensor coordinates are kept for generators
/// and diagnostics.
#[derive(Clone, Debug)]
pub struct SensorGraph {
    n: usize,
    adjacency: Tensor,
    coords: Vec<(f32, f32)>,
}

impl SensorGraph {
    /// Build from an `[N, N]` adjacency and optional coordinates.
    pub fn new(adjacency: Tensor, coords: Vec<(f32, f32)>) -> Self {
        assert_eq!(adjacency.rank(), 2);
        let n = adjacency.shape()[0];
        assert_eq!(adjacency.shape()[1], n, "adjacency must be square");
        assert!(coords.is_empty() || coords.len() == n);
        Self {
            n,
            adjacency,
            coords,
        }
    }

    /// Fully disconnected graph (used when no predefined adjacency exists —
    /// Solar-Energy / Electricity in Table 4).
    pub fn disconnected(n: usize) -> Self {
        Self::new(Tensor::zeros([n, n]), vec![])
    }

    /// Identity-only graph (every node sees itself).
    pub fn identity(n: usize) -> Self {
        Self::new(Tensor::eye(n), vec![])
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The raw `[N, N]` adjacency.
    pub fn adjacency(&self) -> &Tensor {
        &self.adjacency
    }

    /// Sensor coordinates (may be empty).
    pub fn coords(&self) -> &[(f32, f32)] {
        &self.coords
    }

    /// Number of non-zero directed edges (excluding self-loops).
    pub fn edge_count(&self) -> usize {
        let mut count = 0;
        for i in 0..self.n {
            for j in 0..self.n {
                if i != j && self.adjacency.at(&[i, j]) != 0.0 {
                    count += 1;
                }
            }
        }
        count
    }

    /// True when weights are symmetric within `tol`.
    pub fn is_symmetric(&self, tol: f32) -> bool {
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                if (self.adjacency.at(&[i, j]) - self.adjacency.at(&[j, i])).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Adjacency with ones on the diagonal (self-loops added).
    pub fn with_self_loops(&self) -> Tensor {
        let mut a = self.adjacency.clone();
        for i in 0..self.n {
            *a.at_mut(&[i, i]) = 1.0;
        }
        a
    }

    /// Row-normalised adjacency `D⁻¹A` (rows of zeros stay zero).
    pub fn row_normalized(&self) -> Tensor {
        let mut a = self.adjacency.clone();
        for i in 0..self.n {
            let row_sum: f32 = (0..self.n).map(|j| a.at(&[i, j])).sum();
            if row_sum > 0.0 {
                for j in 0..self.n {
                    *a.at_mut(&[i, j]) /= row_sum;
                }
            }
        }
        a
    }

    /// BFS hop distance from `source` to every node (`usize::MAX` when
    /// unreachable); used by the synthetic generators to propagate
    /// congestion waves along the graph.
    pub fn hop_distances(&self, source: usize) -> Vec<usize> {
        let mut dist = vec![usize::MAX; self.n];
        let mut queue = std::collections::VecDeque::new();
        dist[source] = 0;
        queue.push_back(source);
        while let Some(u) = queue.pop_front() {
            for v in 0..self.n {
                if v != u
                    && dist[v] == usize::MAX
                    && (self.adjacency.at(&[u, v]) != 0.0 || self.adjacency.at(&[v, u]) != 0.0)
                {
                    dist[v] = dist[u] + 1;
                    queue.push_back(v);
                }
            }
        }
        dist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line3() -> SensorGraph {
        // 0 - 1 - 2
        let mut a = Tensor::zeros([3, 3]);
        *a.at_mut(&[0, 1]) = 1.0;
        *a.at_mut(&[1, 0]) = 1.0;
        *a.at_mut(&[1, 2]) = 1.0;
        *a.at_mut(&[2, 1]) = 1.0;
        SensorGraph::new(a, vec![])
    }

    #[test]
    fn edge_count_and_symmetry() {
        let g = line3();
        assert_eq!(g.edge_count(), 4);
        assert!(g.is_symmetric(1e-6));
        assert_eq!(g.n(), 3);
    }

    #[test]
    fn row_normalization_sums_to_one() {
        let g = line3();
        let p = g.row_normalized();
        for i in 0..3 {
            let s: f32 = (0..3).map(|j| p.at(&[i, j])).sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
        assert_eq!(p.at(&[1, 0]), 0.5);
    }

    #[test]
    fn disconnected_rows_stay_zero() {
        let g = SensorGraph::disconnected(4);
        let p = g.row_normalized();
        assert_eq!(p.sum(), 0.0);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn hop_distances_on_line() {
        let g = line3();
        assert_eq!(g.hop_distances(0), vec![0, 1, 2]);
        assert_eq!(g.hop_distances(1), vec![1, 0, 1]);
    }

    #[test]
    fn self_loops_added() {
        let g = line3();
        let a = g.with_self_loops();
        for i in 0..3 {
            assert_eq!(a.at(&[i, i]), 1.0);
        }
    }
}
