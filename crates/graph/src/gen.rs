//! Random geometric sensor graphs with Gaussian-kernel edge weights.
//!
//! Mirrors how METR-LA/PEMS adjacency matrices are built from road-network
//! distances (Li et al. 2018): `w_ij = exp(−d(i,j)²/σ²)` thresholded to keep
//! the graph sparse.

use crate::SensorGraph;
use cts_tensor::Tensor;
use rand::Rng;

/// Configuration for [`random_geometric_graph`].
#[derive(Clone, Debug)]
pub struct GraphGenConfig {
    /// Number of sensors.
    pub n: usize,
    /// Kernel bandwidth σ relative to the unit square.
    pub sigma: f32,
    /// Weights below this threshold are dropped (sparsification).
    pub threshold: f32,
}

impl Default for GraphGenConfig {
    fn default() -> Self {
        Self {
            n: 24,
            sigma: 0.25,
            threshold: 0.3,
        }
    }
}

/// Scatter `n` sensors uniformly in the unit square and connect them with
/// Gaussian-kernel weights; guarantees weak connectivity by chaining each
/// node to its nearest already-placed neighbour when thresholding isolates
/// it.
pub fn random_geometric_graph(rng: &mut impl Rng, cfg: &GraphGenConfig) -> SensorGraph {
    let n = cfg.n;
    let coords: Vec<(f32, f32)> = (0..n)
        .map(|_| (rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)))
        .collect();
    let mut a = Tensor::zeros([n, n]);
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            let dx = coords[i].0 - coords[j].0;
            let dy = coords[i].1 - coords[j].1;
            let w = (-(dx * dx + dy * dy) / (cfg.sigma * cfg.sigma)).exp();
            if w >= cfg.threshold {
                *a.at_mut(&[i, j]) = w;
            }
        }
    }
    // Connectivity repair: link isolated nodes to their nearest neighbour.
    for i in 0..n {
        let degree: f32 = (0..n).map(|j| a.at(&[i, j])).sum();
        if degree == 0.0 && n > 1 {
            let (mut best, mut best_d) = (usize::MAX, f32::INFINITY);
            for j in 0..n {
                if j == i {
                    continue;
                }
                let dx = coords[i].0 - coords[j].0;
                let dy = coords[i].1 - coords[j].1;
                let d = dx * dx + dy * dy;
                if d < best_d {
                    best_d = d;
                    best = j;
                }
            }
            let w = (-best_d / (cfg.sigma * cfg.sigma)).exp().max(cfg.threshold);
            *a.at_mut(&[i, best]) = w;
            *a.at_mut(&[best, i]) = w;
        }
    }
    SensorGraph::new(a, coords)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn every_node_has_an_edge() {
        let mut rng = SmallRng::seed_from_u64(0);
        let g = random_geometric_graph(&mut rng, &GraphGenConfig { n: 30, ..Default::default() });
        for i in 0..30 {
            let deg: f32 = (0..30).map(|j| g.adjacency().at(&[i, j])).sum();
            assert!(deg > 0.0, "node {i} isolated");
        }
    }

    #[test]
    fn weights_bounded_and_no_self_loops() {
        let mut rng = SmallRng::seed_from_u64(1);
        let g = random_geometric_graph(&mut rng, &GraphGenConfig::default());
        let a = g.adjacency();
        for i in 0..g.n() {
            assert_eq!(a.at(&[i, i]), 0.0);
            for j in 0..g.n() {
                let w = a.at(&[i, j]);
                assert!((0.0..=1.0).contains(&w));
            }
        }
    }

    #[test]
    fn closer_nodes_get_heavier_edges() {
        let mut rng = SmallRng::seed_from_u64(2);
        let g = random_geometric_graph(&mut rng, &GraphGenConfig { n: 40, sigma: 0.5, threshold: 0.0 });
        let c = g.coords();
        // check the kernel is monotone in distance for a few triples
        let mut checked = 0;
        for i in 0..10 {
            for j in 0..10 {
                for k in 0..10 {
                    if i == j || i == k || j == k {
                        continue;
                    }
                    let d = |a: (f32, f32), b: (f32, f32)| {
                        (a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)
                    };
                    if d(c[i], c[j]) < d(c[i], c[k]) {
                        assert!(g.adjacency().at(&[i, j]) >= g.adjacency().at(&[i, k]));
                        checked += 1;
                    }
                }
            }
        }
        assert!(checked > 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let g1 = random_geometric_graph(&mut SmallRng::seed_from_u64(7), &GraphGenConfig::default());
        let g2 = random_geometric_graph(&mut SmallRng::seed_from_u64(7), &GraphGenConfig::default());
        assert!(g1.adjacency().approx_eq(g2.adjacency(), 0.0));
    }

    #[test]
    fn graph_is_connected_enough_for_bfs() {
        let mut rng = SmallRng::seed_from_u64(3);
        let g = random_geometric_graph(&mut rng, &GraphGenConfig { n: 25, ..Default::default() });
        let reachable = g
            .hop_distances(0)
            .iter()
            .filter(|&&d| d != usize::MAX)
            .count();
        // the repair step keeps things mostly connected; require a majority
        assert!(reachable > 12, "only {reachable} reachable");
    }
}
