//! Normalised/scaled Laplacians and Chebyshev polynomial bases (Eq. 14).

use cts_tensor::{ops, Tensor};

/// Symmetric normalised Laplacian `L = I − D^{-1/2} A D^{-1/2}` (the
/// adjacency is symmetrised first; zero-degree nodes contribute nothing).
pub fn normalized_laplacian(adjacency: &Tensor) -> Tensor {
    let n = adjacency.shape()[0];
    // symmetrise: a_sym = (A + Aᵀ) / 2
    let a_sym = ops::scale(
        &ops::add(adjacency, &ops::transpose_last2(adjacency)),
        0.5,
    );
    let mut deg_inv_sqrt = vec![0.0f32; n];
    for (i, slot) in deg_inv_sqrt.iter_mut().enumerate() {
        let d: f32 = (0..n).map(|j| a_sym.at(&[i, j])).sum();
        if d > 0.0 {
            *slot = 1.0 / d.sqrt();
        }
    }
    let mut l = Tensor::zeros([n, n]);
    for i in 0..n {
        for j in 0..n {
            let norm = -a_sym.at(&[i, j]) * deg_inv_sqrt[i] * deg_inv_sqrt[j];
            *l.at_mut(&[i, j]) = if i == j { 1.0 + norm } else { norm };
        }
    }
    l
}

/// Scaled Laplacian `L̃ = 2L/λ_max − I` with the standard `λ_max ≈ 2`
/// approximation used by STGCN and kin, i.e. `L̃ = L − I`.
pub fn scaled_laplacian(adjacency: &Tensor) -> Tensor {
    let l = normalized_laplacian(adjacency);
    let n = l.shape()[0];
    let mut out = l;
    for i in 0..n {
        *out.at_mut(&[i, i]) -= 1.0;
    }
    out
}

/// Chebyshev polynomial basis `T_0..T_{K-1}` of the scaled Laplacian:
/// `T_0 = I`, `T_1 = L̃`, `T_k = 2 L̃ T_{k-1} − T_{k-2}`.
pub fn chebyshev_basis(adjacency: &Tensor, k: usize) -> Vec<Tensor> {
    assert!(k >= 1);
    let n = adjacency.shape()[0];
    let lt = scaled_laplacian(adjacency);
    let mut basis = vec![Tensor::eye(n)];
    if k >= 2 {
        basis.push(lt.clone());
    }
    for i in 2..k {
        let prev = &basis[i - 1];
        let prev2 = &basis[i - 2];
        let next = ops::sub(&ops::scale(&ops::matmul(&lt, prev), 2.0), prev2);
        basis.push(next);
    }
    basis
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line3() -> Tensor {
        let mut a = Tensor::zeros([3, 3]);
        *a.at_mut(&[0, 1]) = 1.0;
        *a.at_mut(&[1, 0]) = 1.0;
        *a.at_mut(&[1, 2]) = 1.0;
        *a.at_mut(&[2, 1]) = 1.0;
        a
    }

    #[test]
    fn laplacian_rows_kill_constants() {
        // L · 1 = 0 for the *unnormalised* Laplacian; for the symmetric
        // normalised one, L·D^{1/2}·1 = 0. Check that instead.
        let l = normalized_laplacian(&line3());
        let degs = [1.0f32, 2.0, 1.0];
        for i in 0..3 {
            let v: f32 = (0..3).map(|j| l.at(&[i, j]) * degs[j].sqrt()).sum();
            assert!(v.abs() < 1e-5, "row {i}: {v}");
        }
    }

    #[test]
    fn laplacian_diagonal_is_one_for_connected_nodes() {
        let l = normalized_laplacian(&line3());
        for i in 0..3 {
            assert!((l.at(&[i, i]) - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn zero_graph_gives_zero_laplacian_diag() {
        let l = normalized_laplacian(&Tensor::zeros([3, 3]));
        // isolated nodes have degree 0 -> diagonal stays 1 (I), off-diag 0
        assert_eq!(l.at(&[0, 1]), 0.0);
        assert_eq!(l.at(&[0, 0]), 1.0);
    }

    #[test]
    fn chebyshev_recurrence_holds() {
        let a = line3();
        let basis = chebyshev_basis(&a, 4);
        assert_eq!(basis.len(), 4);
        let lt = scaled_laplacian(&a);
        let t2_expected = ops::sub(&ops::scale(&ops::matmul(&lt, &basis[1]), 2.0), &basis[0]);
        assert!(basis[2].approx_eq(&t2_expected, 1e-5));
        assert!(basis[0].approx_eq(&Tensor::eye(3), 0.0));
    }

    #[test]
    fn scaled_laplacian_eigen_range() {
        // eigenvalues of L are in [0,2] for normalised Laplacians, so the
        // scaled version has spectral radius <= 1. Power iteration proxy:
        // repeated multiplication must not blow up.
        let lt = scaled_laplacian(&line3());
        let mut v = Tensor::from_vec([3, 1], vec![1.0, -0.5, 0.25]);
        for _ in 0..20 {
            v = ops::matmul(&lt, &v);
        }
        assert!(v.norm() <= 2.0, "norm {}", v.norm());
    }
}
