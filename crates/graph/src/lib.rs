//! `cts-graph`: sensor-graph construction and the spectral/diffusion
//! machinery used by the S-operators.
//!
//! Provides the weighted graph `G = (V, E, A)` of §2, the Gaussian-kernel
//! adjacency used by DCRNN/STGCN/Graph WaveNet, scaled Laplacians with
//! Chebyshev polynomial bases (Eq. 14), and the forward/backward diffusion
//! transition matrices of the diffusion GCN (Eq. 15).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod diffusion;
mod gen;
mod laplacian;
mod sensor_graph;

pub use diffusion::{transition_matrices, transition_powers};
pub use gen::{random_geometric_graph, GraphGenConfig};
pub use laplacian::{chebyshev_basis, normalized_laplacian, scaled_laplacian};
pub use sensor_graph::SensorGraph;
