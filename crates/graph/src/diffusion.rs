//! Diffusion-GCN transition matrices (Eq. 15, Li et al. 2018).

use cts_tensor::{ops, Tensor};

/// Forward and backward random-walk transition matrices
/// `(D_O⁻¹ A, D_I⁻¹ Aᵀ)`; rows with zero degree stay zero.
pub fn transition_matrices(adjacency: &Tensor) -> (Tensor, Tensor) {
    let n = adjacency.shape()[0];
    let mut fwd = adjacency.clone();
    for i in 0..n {
        let out_deg: f32 = (0..n).map(|j| adjacency.at(&[i, j])).sum();
        if out_deg > 0.0 {
            for j in 0..n {
                *fwd.at_mut(&[i, j]) /= out_deg;
            }
        }
    }
    let at = ops::transpose_last2(adjacency);
    let mut bwd = at.clone();
    for i in 0..n {
        let in_deg: f32 = (0..n).map(|j| at.at(&[i, j])).sum();
        if in_deg > 0.0 {
            for j in 0..n {
                *bwd.at_mut(&[i, j]) /= in_deg;
            }
        }
    }
    (fwd, bwd)
}

/// Powers `P⁰..P^K` of a transition matrix (`P⁰ = I`), the diffusion steps
/// of Eq. 15.
pub fn transition_powers(p: &Tensor, k: usize) -> Vec<Tensor> {
    let n = p.shape()[0];
    let mut powers = vec![Tensor::eye(n)];
    for i in 1..=k {
        let next = ops::matmul(&powers[i - 1], p);
        powers.push(next);
    }
    powers
}

#[cfg(test)]
mod tests {
    use super::*;

    fn directed_pair() -> Tensor {
        // 0 -> 1 with weight 2
        let mut a = Tensor::zeros([2, 2]);
        *a.at_mut(&[0, 1]) = 2.0;
        a
    }

    #[test]
    fn forward_rows_are_stochastic() {
        let (fwd, _) = transition_matrices(&directed_pair());
        assert_eq!(fwd.at(&[0, 1]), 1.0);
        assert_eq!(fwd.at(&[1, 0]), 0.0); // zero out-degree row stays zero
    }

    #[test]
    fn backward_uses_transpose() {
        let (_, bwd) = transition_matrices(&directed_pair());
        // Aᵀ has the edge 1 -> 0 viewed from node 1's in-degree
        assert_eq!(bwd.at(&[1, 0]), 1.0);
        assert_eq!(bwd.at(&[0, 1]), 0.0);
    }

    #[test]
    fn powers_start_at_identity() {
        let (fwd, _) = transition_matrices(&directed_pair());
        let powers = transition_powers(&fwd, 2);
        assert_eq!(powers.len(), 3);
        assert!(powers[0].approx_eq(&Tensor::eye(2), 0.0));
        assert!(powers[1].approx_eq(&fwd, 0.0));
    }

    #[test]
    fn stochastic_rows_stay_stochastic_under_powers() {
        let mut a = Tensor::zeros([3, 3]);
        *a.at_mut(&[0, 1]) = 1.0;
        *a.at_mut(&[1, 2]) = 3.0;
        *a.at_mut(&[1, 0]) = 1.0;
        *a.at_mut(&[2, 0]) = 2.0;
        let (fwd, _) = transition_matrices(&a);
        for p in transition_powers(&fwd, 3) {
            for i in 0..3 {
                let s: f32 = (0..3).map(|j| p.at(&[i, j])).sum();
                assert!((s - 1.0).abs() < 1e-5, "row {i} sums to {s}");
            }
        }
    }
}
