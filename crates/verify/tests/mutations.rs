//! Mutation-style tests: seed the analyzer with deliberately broken
//! architectures — one per defect class — and assert each is rejected
//! with a finding that names the offending node or edge.

use cts_tensor::sym::SymDim;
use cts_verify::{
    validate_block, validate_genotype, ArchSpec, BlockSpec, FindingKind, ModelDims, OpKind,
    ShapeCtx,
};

fn dims() -> ModelDims {
    ModelDims {
        features: 2,
        input_len: 12,
        horizon: 12,
        d_model: 8,
        num_nodes: Some(5),
        gcn_k: 2,
        adaptive: false,
        adaptive_emb: 0,
    }
}

fn healthy_block() -> BlockSpec {
    BlockSpec {
        m: 3,
        edges: vec![
            (0, 1, OpKind::Gdcc),
            (0, 2, OpKind::InformerS),
            (1, 2, OpKind::Identity),
        ],
    }
}

fn arch(blocks: Vec<BlockSpec>, backbone: Vec<usize>) -> ArchSpec {
    ArchSpec { dims: dims(), blocks, backbone }
}

fn assert_rejected(spec: &ArchSpec, kind: FindingKind, site_fragment: &str, msg_fragment: &str) {
    let report = validate_genotype(spec);
    assert!(!report.is_ok(), "broken spec was accepted: {spec:?}");
    let hit = report
        .errors()
        .find(|f| f.kind == kind)
        .unwrap_or_else(|| panic!("no {kind:?} finding in {:?}", report.findings));
    assert!(
        hit.site.contains(site_fragment),
        "site {:?} does not name {site_fragment:?}",
        hit.site
    );
    assert!(
        hit.message.contains(msg_fragment),
        "message {:?} does not mention {msg_fragment:?}",
        hit.message
    );
}

// Defect class 1: dangling node — a latent node no edge ever feeds.
#[test]
fn dangling_node_rejected() {
    let block = BlockSpec {
        m: 4,
        edges: vec![
            (0, 1, OpKind::Gdcc),
            (1, 3, OpKind::InformerT),
            (0, 3, OpKind::Identity),
        ],
    };
    assert_rejected(
        &arch(vec![block], vec![0]),
        FindingKind::DanglingNode,
        "node 2",
        "node 2",
    );
}

// Defect class 2: all-zero input edges — the node is identically zero.
#[test]
fn all_zero_input_node_rejected() {
    let block = BlockSpec {
        m: 3,
        edges: vec![
            (0, 1, OpKind::Zero),
            (0, 2, OpKind::Gdcc),
            (1, 2, OpKind::Identity),
        ],
    };
    assert_rejected(
        &arch(vec![block], vec![0]),
        FindingKind::AllZeroInput,
        "node 1",
        "zero",
    );
}

// Defect class 3: gradient-starved parameter — a parametric edge whose
// target never reaches the block output through a non-zero path.
#[test]
fn gradient_starved_parameter_rejected() {
    let block = BlockSpec {
        m: 4,
        edges: vec![
            (0, 1, OpKind::InformerT),
            (1, 2, OpKind::Gdcc),
            (2, 3, OpKind::Zero),
            (0, 3, OpKind::InformerS),
        ],
    };
    let spec = arch(vec![block], vec![0]);
    let report = validate_genotype(&spec);
    assert!(!report.is_ok());
    // Both the informer_t on e0 and the gdcc on e1 are behind the zero cut.
    let starved: Vec<_> = report
        .errors()
        .filter(|f| f.kind == FindingKind::StarvedParam)
        .collect();
    assert_eq!(starved.len(), 2, "{:?}", report.findings);
    assert!(starved.iter().any(|f| f.site == "block0.e0"));
    assert!(starved.iter().any(|f| f.site == "block0.e1"));
    assert!(starved[0].message.contains("never receive a gradient"));
    assert_eq!(report.edge_liveness, vec![vec![false, false, false, true]]);
}

// Defect class 4: bad macro wiring — a block reading a source that does
// not exist yet (forward reference in the backbone).
#[test]
fn bad_macro_wiring_rejected() {
    assert_rejected(
        &arch(vec![healthy_block(), healthy_block()], vec![0, 2]),
        FindingKind::BadBackbone,
        "backbone[1]",
        "source 2",
    );
}

// Defect class 5: malformed block — a backward (non-DAG) edge.
#[test]
fn backward_edge_rejected() {
    let block = BlockSpec {
        m: 3,
        edges: vec![
            (0, 1, OpKind::Gdcc),
            (2, 1, OpKind::Identity),
            (0, 2, OpKind::InformerT),
        ],
    };
    assert_rejected(
        &arch(vec![block], vec![0]),
        FindingKind::MalformedBlock,
        "block0.e1",
        "2→1",
    );
}

// Defect class 6: degenerate block — fewer than two latent nodes.
#[test]
fn single_node_block_rejected() {
    let block = BlockSpec { m: 1, edges: vec![] };
    assert_rejected(
        &arch(vec![block], vec![0]),
        FindingKind::MalformedBlock,
        "block0",
        "at least 2",
    );
}

// Defect class 7: backbone arity mismatch.
#[test]
fn backbone_length_mismatch_rejected() {
    assert_rejected(
        &arch(vec![healthy_block(), healthy_block()], vec![0]),
        FindingKind::BadBackbone,
        "backbone",
        "1 entries for 2 blocks",
    );
}

// Defect class 8: rank error — a corrupted scaffold hands a block a
// rank-3 tensor instead of [B, N, T, D].
#[test]
fn rank_error_rejected() {
    let ctx = ShapeCtx { width: 8, graph_nodes: Some(5) };
    let input = vec![SymDim::Sym("B"), SymDim::Const(5), SymDim::Const(8)];
    let report = validate_block(0, &healthy_block(), &input, &ctx);
    assert!(!report.is_ok());
    let f = report
        .errors()
        .find(|f| f.kind == FindingKind::RankError)
        .unwrap_or_else(|| panic!("no rank finding: {:?}", report.findings));
    assert!(f.site.starts_with("block0.e"), "{}", f.site);
    assert!(f.message.contains("rank"), "{}", f.message);
}

// Defect class 9: channel mismatch — block input carries a different
// channel width than the operators were built for.
#[test]
fn channel_mismatch_rejected() {
    let ctx = ShapeCtx { width: 8, graph_nodes: Some(5) };
    let input = vec![
        SymDim::Sym("B"),
        SymDim::Const(5),
        SymDim::Const(12),
        SymDim::Const(16),
    ];
    let report = validate_block(0, &healthy_block(), &input, &ctx);
    assert!(!report.is_ok());
    let f = report
        .errors()
        .find(|f| f.kind == FindingKind::ChannelMismatch)
        .unwrap_or_else(|| panic!("no channel finding: {:?}", report.findings));
    assert!(f.site.starts_with("block0.e"), "{}", f.site);
    assert!(f.message.contains("channel"), "{}", f.message);
}

// Defect class 10: node-count mismatch — a spatial operator fed a node
// dim that is not the sensor graph's.
#[test]
fn node_count_mismatch_rejected() {
    let ctx = ShapeCtx { width: 8, graph_nodes: Some(5) };
    let input = vec![
        SymDim::Sym("B"),
        SymDim::Const(7),
        SymDim::Const(12),
        SymDim::Const(8),
    ];
    let report = validate_block(0, &healthy_block(), &input, &ctx);
    assert!(!report.is_ok());
    let f = report
        .errors()
        .find(|f| f.kind == FindingKind::NodeCountMismatch)
        .unwrap_or_else(|| panic!("no node-count finding: {:?}", report.findings));
    assert!(f.message.contains("node-count"), "{}", f.message);
}

// Sanity: a healthy compact-set architecture sails through, and every
// finding Display names its site.
#[test]
fn healthy_spec_accepted_and_findings_display_sites() {
    let report = validate_genotype(&arch(vec![healthy_block(), healthy_block()], vec![0, 1]));
    assert!(report.is_ok(), "{:?}", report.findings);

    let broken = arch(vec![healthy_block(), healthy_block()], vec![0, 2]);
    let err = cts_verify::check_genotype(&broken).unwrap_err();
    let rendered = err.to_string();
    assert!(rendered.contains("backbone[1]"), "{rendered}");
    assert!(rendered.contains("architecture rejected"), "{rendered}");
}
