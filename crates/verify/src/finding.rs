//! Findings: what the analyzer reports and how severe each item is.

use cts_tensor::sym::SymShape;
use std::fmt;

/// How bad a finding is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Severity {
    /// The architecture is invalid or degenerate; reject it.
    Error,
    /// Suspicious but trainable (e.g. a latent node that never reaches the
    /// block output); report, don't reject.
    Warning,
}

/// The class of defect a finding describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FindingKind {
    /// Structurally broken block DAG (non-forward edge, index out of
    /// range, fewer than two nodes).
    MalformedBlock,
    /// A latent node with no incoming edge at all.
    DanglingNode,
    /// The macro backbone wires a block to a source that doesn't exist yet.
    BadBackbone,
    /// An operator rejected its input rank.
    RankError,
    /// An operator's channel width doesn't match its input.
    ChannelMismatch,
    /// A spatial operator fed a node dim that isn't the graph's.
    NodeCountMismatch,
    /// Two summed values cannot be broadcast together.
    BroadcastMismatch,
    /// The merged backbone output doesn't round-trip `[B, N, T, D]` into
    /// the output head's `T·D` flatten.
    RoundTrip,
    /// Every incoming edge of a node is `zero`: the node is identically 0.
    AllZeroInput,
    /// A parametric edge no gradient can reach (behind `zero` on every
    /// path from input or to output).
    StarvedParam,
    /// A latent node whose output never reaches the block output through
    /// a non-`zero` path (wasted compute, not fatal).
    DeadNode,
    /// A kernel registry invariant is violated (duplicate name, empty
    /// registry): the determinism audit cannot vouch for the build.
    NonDeterministicKernel,
    /// The statically priced cost of the architecture exceeds a configured
    /// resource budget (per-step FLOPs, peak arena bytes, or predicted
    /// latency); the finding names the offending step.
    OverBudget,
}

/// One analyzer finding: what, where, how severe, and a human-readable
/// message naming the offending node/edge.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Defect class.
    pub kind: FindingKind,
    /// Error (reject) or warning (report).
    pub severity: Severity,
    /// Where: `"block0.e2"`, `"block1 node 3"`, `"backbone[2]"`, …
    pub site: String,
    /// What went wrong, in terms of the named node/edge.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sev = match self.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        write!(f, "[{sev}] {:?} at {}: {}", self.kind, self.site, self.message)
    }
}

/// The analyzer's verdict on one architecture.
#[derive(Clone, Debug, Default)]
pub struct VerifyReport {
    /// Everything the passes flagged.
    pub findings: Vec<Finding>,
    /// Inferred shape of the merged backbone output (when the shape pass
    /// got that far).
    pub merged_shape: Option<SymShape>,
    /// Per block, per edge (in `BlockSpec::edges` order): can a gradient
    /// flow through this edge? `zero` edges are always dead. Exposed so
    /// the sweep binary can cross-check against the runtime tape audit.
    pub edge_liveness: Vec<Vec<bool>>,
}

impl VerifyReport {
    /// True when no `Error`-severity finding was recorded.
    pub fn is_ok(&self) -> bool {
        self.errors().next().is_none()
    }

    /// Error-severity findings.
    pub fn errors(&self) -> impl Iterator<Item = &Finding> {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
    }

    /// Warning-severity findings.
    pub fn warnings(&self) -> impl Iterator<Item = &Finding> {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Warning)
    }

    pub(crate) fn error(&mut self, kind: FindingKind, site: impl Into<String>, message: impl Into<String>) {
        self.findings.push(Finding {
            kind,
            severity: Severity::Error,
            site: site.into(),
            message: message.into(),
        });
    }

    pub(crate) fn warning(&mut self, kind: FindingKind, site: impl Into<String>, message: impl Into<String>) {
        self.findings.push(Finding {
            kind,
            severity: Severity::Warning,
            site: site.into(),
            message: message.into(),
        });
    }
}

/// A rejected architecture, carrying the full report.
#[derive(Clone, Debug)]
pub struct VerifyError {
    /// The report whose errors caused the rejection.
    pub report: VerifyReport,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let errs: Vec<String> = self.report.errors().map(ToString::to_string).collect();
        write!(f, "architecture rejected: {}", errs.join("; "))
    }
}

impl std::error::Error for VerifyError {}
