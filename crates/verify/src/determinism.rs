//! Determinism audit over the tensor kernel registry.
//!
//! Every parallel kernel in `cts-tensor` must route through a registered
//! [`KernelSpec`](cts_tensor::parallel::KernelSpec) whose partition and
//! reduction strategies are order-fixed; the runtime entry points panic on
//! unregistered specs. This pass machine-checks the registry invariants the
//! runtime check relies on, so `cts-verify` can vouch that a build only
//! ships deterministic kernels.
//!
//! Since the SIMD layer landed, each spec also declares its lane shape
//! ([`cts_tensor::parallel::SimdContract`]): the audit enforces that
//! scalar-only kernels declare width 1 and vectorized kernels declare the
//! canonical [`cts_tensor::simd::LANES`] width, and the exhaustive
//! [`LaneOrder`] match forces this audit to be revisited whenever a new
//! (potentially order-sensitive) lane strategy is introduced.

use crate::finding::{Finding, FindingKind, Severity};
use cts_tensor::parallel::{kernels, LaneOrder, Partition, Reduction};
use std::collections::HashSet;

/// One registry entry, as seen by the audit.
#[derive(Clone, Debug)]
pub struct KernelEntry {
    /// Registry name (unique).
    pub name: &'static str,
    /// How the iteration space is split across threads.
    pub partition: Partition,
    /// How per-thread results are combined.
    pub reduction: Reduction,
    /// Declared SIMD lane width (1 = scalar only).
    pub lane_width: usize,
    /// Declared lane-order contract for the vector path.
    pub lane_order: LaneOrder,
}

/// The audit's verdict: the registry contents plus any violations.
#[derive(Clone, Debug)]
pub struct DeterminismReport {
    /// Every registered kernel.
    pub kernels: Vec<KernelEntry>,
    /// Invariant violations (empty on a healthy build).
    pub findings: Vec<Finding>,
}

impl DeterminismReport {
    /// True when the registry upholds every invariant.
    pub fn is_ok(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Audit the kernel registry: non-empty, unique names, and every
/// partition/reduction drawn from the order-fixed set.
pub fn audit_determinism() -> DeterminismReport {
    let mut findings = Vec::new();
    let mut entries = Vec::with_capacity(kernels::ALL.len());
    if kernels::ALL.is_empty() {
        findings.push(finding(
            "registry",
            "the kernel registry is empty: no parallel kernel can prove its schedule",
        ));
    }
    let mut seen = HashSet::new();
    for spec in kernels::ALL {
        if spec.name.is_empty() {
            findings.push(finding("registry", "a kernel spec has an empty name"));
        }
        if !seen.insert(spec.name) {
            findings.push(finding(
                spec.name,
                format!("duplicate kernel name `{}`: audit cannot distinguish the entries", spec.name),
            ));
        }
        // Exhaustive matches: adding a new (potentially order-sensitive)
        // strategy variant forces this audit to be revisited at compile time.
        match spec.partition {
            Partition::ContiguousUnits => {}
        }
        match spec.reduction {
            Reduction::DisjointWrites | Reduction::OrderedPartialSums => {}
        }
        // A lane-order declaration must be consistent with its width:
        // scalar-only kernels have no lanes, vectorized kernels must be
        // written for the canonical width so every dispatch level runs the
        // same lane layout.
        match spec.simd.order {
            LaneOrder::ScalarOnly => {
                if spec.simd.lane_width != 1 {
                    findings.push(finding(
                        spec.name,
                        format!(
                            "kernel `{}` declares ScalarOnly but lane width {} — scalar kernels must declare width 1",
                            spec.name, spec.simd.lane_width
                        ),
                    ));
                }
            }
            LaneOrder::ElementChains | LaneOrder::PinnedMaxTree => {
                if spec.simd.lane_width != cts_tensor::simd::LANES {
                    findings.push(finding(
                        spec.name,
                        format!(
                            "kernel `{}` declares a vector lane order at width {} but the SIMD layer is written for {} lanes",
                            spec.name,
                            spec.simd.lane_width,
                            cts_tensor::simd::LANES
                        ),
                    ));
                }
            }
        }
        entries.push(KernelEntry {
            name: spec.name,
            partition: spec.partition,
            reduction: spec.reduction,
            lane_width: spec.simd.lane_width,
            lane_order: spec.simd.order,
        });
    }
    DeterminismReport { kernels: entries, findings }
}

fn finding(site: impl Into<String>, message: impl Into<String>) -> Finding {
    Finding {
        kind: FindingKind::NonDeterministicKernel,
        severity: Severity::Error,
        site: site.into(),
        message: message.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_audit_is_clean() {
        let report = audit_determinism();
        assert!(report.is_ok(), "{:?}", report.findings);
        assert!(!report.kernels.is_empty());
    }

    #[test]
    fn audit_lists_every_registered_kernel() {
        let report = audit_determinism();
        assert_eq!(report.kernels.len(), kernels::ALL.len());
        assert!(report.kernels.iter().any(|k| k.name == "matmul"));
    }

    #[test]
    fn vectorized_kernels_declare_canonical_lane_width() {
        let report = audit_determinism();
        let mm = report.kernels.iter().find(|k| k.name == "matmul").unwrap();
        assert_eq!(mm.lane_order, LaneOrder::ElementChains);
        assert_eq!(mm.lane_width, cts_tensor::simd::LANES);
        let sm = report.kernels.iter().find(|k| k.name == "softmax.forward").unwrap();
        assert_eq!(sm.lane_order, LaneOrder::PinnedMaxTree);
        // Sequential-sum kernels must stay scalar: vectorizing them would
        // reassociate their single addition chain.
        let lse = report.kernels.iter().find(|k| k.name == "softmax.logsumexp").unwrap();
        assert_eq!(lse.lane_order, LaneOrder::ScalarOnly);
        assert_eq!(lse.lane_width, 1);
    }
}
