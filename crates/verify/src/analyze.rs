//! The three analysis passes: structure, symbolic shapes, gradient
//! reachability.

use crate::finding::{FindingKind, VerifyReport};
use crate::spec::{ArchSpec, BlockSpec};
use cts_ops::{OpKind, ShapeCtx, ShapeIssue};
use cts_tensor::sym::{broadcast_sym, format_shape, SymDim, SymShape};

/// Run every pass over `spec` and collect the verdict.
///
/// Structure is checked first; blocks that are structurally broken are
/// excluded from the shape and reachability passes (their findings would
/// be nonsense), but every other block is still analyzed, so one report
/// names as many independent defects as possible.
pub fn validate_genotype(spec: &ArchSpec) -> VerifyReport {
    let mut report = VerifyReport::default();
    let block_ok: Vec<bool> = spec
        .blocks
        .iter()
        .enumerate()
        .map(|(i, b)| check_structure(&mut report, i, b))
        .collect();
    check_backbone(&mut report, spec);
    shape_pass(&mut report, spec, &block_ok);
    for (i, block) in spec.blocks.iter().enumerate() {
        if block_ok[i] {
            reach_pass(&mut report, i, block);
        } else {
            report.edge_liveness.push(vec![false; block.edges.len()]);
        }
    }
    report
}

/// Analyze one block DAG in isolation against an arbitrary symbolic input
/// shape.
///
/// This is the building block [`validate_genotype`] applies per backbone
/// position; it is public so callers (and mutation tests) can probe how a
/// block reacts to inputs the genotype-level walk would never produce —
/// e.g. a corrupted scaffold handing a block a rank-3 tensor or a
/// wrong-width channel dim.
pub fn validate_block(
    bi: usize,
    block: &BlockSpec,
    input: &SymShape,
    ctx: &ShapeCtx,
) -> VerifyReport {
    let mut report = VerifyReport::default();
    if check_structure(&mut report, bi, block) {
        block_shapes(&mut report, bi, block, input, ctx);
        reach_pass(&mut report, bi, block);
    } else {
        report.edge_liveness.push(vec![false; block.edges.len()]);
    }
    report
}

/// Structural validity of one block DAG. Returns `false` when the block
/// is too broken for the later passes.
fn check_structure(report: &mut VerifyReport, bi: usize, block: &BlockSpec) -> bool {
    let mut ok = true;
    if block.m < 2 {
        report.error(
            FindingKind::MalformedBlock,
            format!("block{bi}"),
            format!("block{bi} has m = {} latent nodes; at least 2 (input and output) are required", block.m),
        );
        return false;
    }
    for (ei, (from, to, op)) in block.edges.iter().enumerate() {
        if from >= to || *to >= block.m {
            report.error(
                FindingKind::MalformedBlock,
                format!("block{bi}.e{ei}"),
                format!(
                    "edge e{ei} ({from}→{to}, {op}) of block{bi} is not a forward edge within {} nodes",
                    block.m
                ),
            );
            ok = false;
        }
    }
    if !ok {
        return false;
    }
    for j in 1..block.m {
        if !block.edges.iter().any(|(_, to, _)| *to == j) {
            report.error(
                FindingKind::DanglingNode,
                format!("block{bi} node {j}"),
                format!("node {j} of block{bi} has no incoming edge; its value is undefined"),
            );
            ok = false;
        }
    }
    ok
}

/// Macro wiring: one source index per block, each pointing at the
/// embedding (0) or an *earlier* block's output.
fn check_backbone(report: &mut VerifyReport, spec: &ArchSpec) {
    if spec.blocks.is_empty() {
        report.error(
            FindingKind::MalformedBlock,
            "model",
            "architecture has no ST-blocks",
        );
    }
    if spec.backbone.len() != spec.blocks.len() {
        report.error(
            FindingKind::BadBackbone,
            "backbone",
            format!(
                "backbone has {} entries for {} blocks",
                spec.backbone.len(),
                spec.blocks.len()
            ),
        );
        return;
    }
    for (i, &src) in spec.backbone.iter().enumerate() {
        if src > i {
            report.error(
                FindingKind::BadBackbone,
                format!("backbone[{i}]"),
                format!(
                    "block{i} reads source {src}, but only the embedding (0) and blocks 0..{i} exist at that point"
                ),
            );
        }
    }
}

/// Walk the whole architecture symbolically, inferring every intermediate
/// shape and checking the output head's round-trip constraint.
fn shape_pass(report: &mut VerifyReport, spec: &ArchSpec, block_ok: &[bool]) {
    let dims = &spec.dims;
    let node_dim = match dims.num_nodes {
        Some(n) => SymDim::Const(n),
        None => SymDim::Sym("N"),
    };
    let ctx = ShapeCtx {
        width: dims.d_model,
        graph_nodes: dims.num_nodes,
    };
    // Embedding: Linear(features → d_model) over the last dim.
    let embedded: SymShape = vec![
        SymDim::Sym("B"),
        node_dim,
        SymDim::Const(dims.input_len),
        SymDim::Const(dims.d_model),
    ];
    let mut sources: Vec<Option<SymShape>> = vec![Some(embedded)];
    let mut block_outputs: Vec<Option<SymShape>> = Vec::with_capacity(spec.blocks.len());
    for (bi, block) in spec.blocks.iter().enumerate() {
        let input = spec
            .backbone
            .get(bi)
            .and_then(|&src| sources.get(src).cloned().flatten());
        let out = match (&input, block_ok[bi]) {
            (Some(input), true) => block_shapes(report, bi, block, input, &ctx),
            _ => None,
        };
        // Block-level residual: out + input must broadcast.
        let residual = match (&out, &input) {
            (Some(o), Some(i)) => match broadcast_sym(o, i) {
                Ok(s) => Some(s),
                Err(e) => {
                    report.error(
                        FindingKind::BroadcastMismatch,
                        format!("block{bi} residual"),
                        format!("block{bi}'s output cannot add to its residual input: {e}"),
                    );
                    None
                }
            },
            _ => None,
        };
        sources.push(residual.clone());
        block_outputs.push(residual);
    }
    // Merge: sum of all block outputs.
    let mut merged: Option<SymShape> = None;
    for (bi, out) in block_outputs.iter().enumerate() {
        let Some(out) = out else { return };
        merged = Some(match merged {
            None => out.clone(),
            Some(acc) => match broadcast_sym(&acc, out) {
                Ok(s) => s,
                Err(e) => {
                    report.error(
                        FindingKind::BroadcastMismatch,
                        "merge",
                        format!("block{bi}'s output cannot join the skip-connection sum: {e}"),
                    );
                    return;
                }
            },
        });
    }
    let Some(merged) = merged else { return };
    // Round-trip: the output head flattens [B, N, T, D] → [B, N, T·D] and
    // expects T == input_len, D == d_model (and N == the graph's).
    let mut ok = merged.len() == 4
        && merged[2].is_const(dims.input_len)
        && merged[3].is_const(dims.d_model);
    if let (true, Some(n)) = (ok, dims.num_nodes) {
        ok = merged[1].is_const(n);
    }
    if !ok {
        report.error(
            FindingKind::RoundTrip,
            "output head",
            format!(
                "merged backbone output is {}, but the output head needs [B, {}, {}, {}] to flatten into its {}-unit input",
                format_shape(&merged),
                dims.num_nodes.map_or_else(|| "N".to_string(), |n| n.to_string()),
                dims.input_len,
                dims.d_model,
                dims.input_len * dims.d_model,
            ),
        );
    }
    report.merged_shape = Some(merged);
}

/// Infer every node shape inside one block; returns the output node's
/// shape when inference survives.
fn block_shapes(
    report: &mut VerifyReport,
    bi: usize,
    block: &BlockSpec,
    input: &SymShape,
    ctx: &ShapeCtx,
) -> Option<SymShape> {
    let mut nodes: Vec<Option<SymShape>> = vec![None; block.m];
    nodes[0] = Some(input.clone());
    let mut ok = true;
    for j in 1..block.m {
        let mut acc: Option<SymShape> = None;
        for (ei, (from, to, op)) in block.edges.iter().enumerate() {
            if *to != j {
                continue;
            }
            let Some(src) = nodes[*from].clone() else {
                continue; // upstream already failed; avoid cascading noise
            };
            let site = format!("block{bi}.e{ei}");
            let out = match op.infer_shape(&src, ctx) {
                Ok(s) => s,
                Err(issue) => {
                    let kind = match issue {
                        ShapeIssue::Rank { .. } => FindingKind::RankError,
                        ShapeIssue::Channel { .. } => FindingKind::ChannelMismatch,
                        ShapeIssue::Nodes { .. } => FindingKind::NodeCountMismatch,
                    };
                    report.error(
                        kind,
                        site,
                        format!("edge e{ei} ({from}→{to}, {op}) of block{bi}: {issue}"),
                    );
                    ok = false;
                    continue;
                }
            };
            acc = match acc.take() {
                None => Some(out),
                Some(a) => match broadcast_sym(&a, &out) {
                    Ok(s) => Some(s),
                    Err(e) => {
                        report.error(
                            FindingKind::BroadcastMismatch,
                            format!("block{bi} node {j}"),
                            format!(
                                "edge e{ei} ({from}→{to}, {op}) cannot sum into node {j} of block{bi}: {e}"
                            ),
                        );
                        ok = false;
                        Some(a)
                    }
                },
            };
        }
        nodes[j] = acc;
    }
    if !ok {
        return None;
    }
    nodes[block.m - 1].clone()
}

/// Gradient reachability inside one block.
///
/// * `fwd[i]`: node `i` carries input-dependent signal (reachable from the
///   block input through non-`zero` edges).
/// * `bwd[j]`: a gradient from the block output reaches node `j` through
///   non-`zero` edges.
///
/// An edge's *parameters* are reachable iff `bwd[to]` holds — the tape
/// path from the loss to an operator weight runs through the op's output,
/// never through its input history (a zero-fed operator still trains its
/// bias and norm). `fwd` drives the degeneracy checks instead: an
/// all-`zero`-fed node is identically zero.
fn reach_pass(report: &mut VerifyReport, bi: usize, block: &BlockSpec) {
    let m = block.m;
    let mut fwd = vec![false; m];
    fwd[0] = true;
    for j in 1..m {
        let incoming: Vec<&(usize, usize, OpKind)> =
            block.edges.iter().filter(|(_, to, _)| *to == j).collect();
        fwd[j] = incoming
            .iter()
            .any(|(from, _, op)| *op != OpKind::Zero && fwd[*from]);
        if !incoming.is_empty() && incoming.iter().all(|(_, _, op)| *op == OpKind::Zero) {
            report.error(
                FindingKind::AllZeroInput,
                format!("block{bi} node {j}"),
                format!(
                    "node {j} of block{bi} is identically zero: all {} of its incoming edges are `zero`",
                    incoming.len()
                ),
            );
        }
    }
    let mut bwd = vec![false; m];
    bwd[m - 1] = true;
    for i in (0..m - 1).rev() {
        bwd[i] = block
            .edges
            .iter()
            .any(|(from, to, op)| *from == i && *op != OpKind::Zero && bwd[*to]);
    }
    let mut liveness = Vec::with_capacity(block.edges.len());
    for (ei, (from, to, op)) in block.edges.iter().enumerate() {
        let live = *op != OpKind::Zero && bwd[*to];
        liveness.push(live);
        if op.is_parametric() && !live {
            report.error(
                FindingKind::StarvedParam,
                format!("block{bi}.e{ei}"),
                format!(
                    "parameters of edge e{ei} ({from}→{to}, {op}) in block{bi} can never receive a gradient: node {to} does not reach the block output through any non-`zero` path"
                ),
            );
        }
    }
    for j in 1..m - 1 {
        if !bwd[j] {
            report.warning(
                FindingKind::DeadNode,
                format!("block{bi} node {j}"),
                format!(
                    "node {j} of block{bi} never reaches the block output through a non-`zero` path; its computation is wasted"
                ),
            );
        } else if !fwd[j] {
            report.warning(
                FindingKind::DeadNode,
                format!("block{bi} node {j}"),
                format!(
                    "node {j} of block{bi} carries no input-dependent signal (every path from the block input passes a `zero` edge)"
                ),
            );
        }
    }
    report.edge_liveness.push(liveness);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ModelDims;

    fn dims() -> ModelDims {
        ModelDims {
            features: 2,
            input_len: 12,
            horizon: 12,
            d_model: 8,
            num_nodes: Some(5),
            gcn_k: 2,
            adaptive: false,
            adaptive_emb: 0,
        }
    }

    fn healthy_block() -> BlockSpec {
        BlockSpec {
            m: 3,
            edges: vec![
                (0, 1, OpKind::Gdcc),
                (0, 2, OpKind::InformerS),
                (1, 2, OpKind::Identity),
            ],
        }
    }

    fn arch(blocks: Vec<BlockSpec>, backbone: Vec<usize>) -> ArchSpec {
        ArchSpec { dims: dims(), blocks, backbone }
    }

    #[test]
    fn healthy_architecture_passes() {
        let spec = arch(vec![healthy_block(), healthy_block()], vec![0, 1]);
        let report = validate_genotype(&spec);
        assert!(report.is_ok(), "unexpected findings: {:?}", report.findings);
        let merged = report.merged_shape.expect("shape pass completed");
        assert_eq!(format_shape(&merged), "[B, 5, 12, 8]");
        assert_eq!(report.edge_liveness, vec![vec![true; 3]; 2]);
    }

    #[test]
    fn zero_edges_are_dead_but_legal_when_bypassed() {
        let block = BlockSpec {
            m: 3,
            edges: vec![
                (0, 1, OpKind::Gdcc),
                (1, 2, OpKind::InformerT),
                (0, 2, OpKind::Zero),
            ],
        };
        let report = validate_genotype(&arch(vec![block], vec![0]));
        assert!(report.is_ok(), "{:?}", report.findings);
        assert_eq!(report.edge_liveness, vec![vec![true, true, false]]);
    }

    #[test]
    fn starved_parametric_edge_is_flagged() {
        // Node 1 only exits through a zero edge, so the gdcc on (0,1) can
        // never see a gradient. (0,2) keeps the output alive.
        let block = BlockSpec {
            m: 3,
            edges: vec![
                (0, 1, OpKind::Gdcc),
                (1, 2, OpKind::Zero),
                (0, 2, OpKind::Identity),
            ],
        };
        let report = validate_genotype(&arch(vec![block], vec![0]));
        assert!(!report.is_ok());
        let f = report
            .errors()
            .find(|f| f.kind == FindingKind::StarvedParam)
            .expect("starved param finding");
        assert!(f.message.contains("e0"), "{}", f.message);
        assert!(f.message.contains("gdcc"), "{}", f.message);
        assert_eq!(report.edge_liveness, vec![vec![false, false, true]]);
    }

    #[test]
    fn dead_node_is_a_warning_not_an_error() {
        // Node 1 exits only through zero, but nothing parametric feeds it:
        // wasted plumbing, still trainable.
        let block = BlockSpec {
            m: 3,
            edges: vec![
                (0, 1, OpKind::Identity),
                (1, 2, OpKind::Zero),
                (0, 2, OpKind::Gdcc),
            ],
        };
        let report = validate_genotype(&arch(vec![block], vec![0]));
        assert!(report.is_ok(), "{:?}", report.findings);
        assert!(report.warnings().any(|f| f.kind == FindingKind::DeadNode));
    }

    #[test]
    fn backbone_forward_reference_rejected() {
        let spec = arch(vec![healthy_block(), healthy_block()], vec![0, 2]);
        let report = validate_genotype(&spec);
        assert!(report
            .errors()
            .any(|f| f.kind == FindingKind::BadBackbone && f.site == "backbone[1]"));
    }

    #[test]
    fn unknown_node_count_stays_symbolic() {
        let mut spec = arch(vec![healthy_block()], vec![0]);
        spec.dims.num_nodes = None;
        let report = validate_genotype(&spec);
        assert!(report.is_ok(), "{:?}", report.findings);
        assert_eq!(
            format_shape(&report.merged_shape.unwrap()),
            "[B, N, 12, 8]"
        );
    }
}
