//! The architecture description the analyzer consumes.
//!
//! `cts-verify` sits *below* `autocts` in the dependency graph (so the
//! search crate can call it as a pre-flight), which means it cannot see the
//! `Genotype` type directly. [`ArchSpec`] is the neutral description both
//! sides agree on; `autocts` converts a `Genotype` + `SearchConfig` +
//! dataset spec into one.

use cts_ops::OpKind;

/// Concrete model dimensions the shape pass binds constants from.
#[derive(Clone, Debug)]
pub struct ModelDims {
    /// Input feature count per node and timestep.
    pub features: usize,
    /// Input window length `T` (the backbone must round-trip it).
    pub input_len: usize,
    /// Forecast horizon `Q` (output steps).
    pub horizon: usize,
    /// Channel width `D` of the ST-backbone.
    pub d_model: usize,
    /// Node count `N` of the sensor graph; `None` leaves it symbolic
    /// (spatial ops then accept any node dim).
    pub num_nodes: Option<usize>,
    /// Diffusion / Chebyshev order `K` of the GCN-family operators (sizes
    /// their weight stacks; the cost pass prices `K` propagation rounds).
    pub gcn_k: usize,
    /// Whether the graph context learns an adaptive adjacency (DGCN then
    /// carries adaptive-direction weights and re-derives the support each
    /// forward).
    pub adaptive: bool,
    /// Embedding width of the adaptive adjacency factors (ignored unless
    /// `adaptive`).
    pub adaptive_emb: usize,
}

/// One ST-block's DAG: `m` latent nodes and operator-labelled edges
/// `(from, to, op)` with `from < to`; node 0 is the block input and node
/// `m - 1` the block output. Matches `autocts::BlockGenotype`.
#[derive(Clone, Debug)]
pub struct BlockSpec {
    /// Number of latent nodes (≥ 2).
    pub m: usize,
    /// Directed operator edges.
    pub edges: Vec<(usize, usize, OpKind)>,
}

/// A full candidate architecture: model dims, per-block DAGs, and the
/// macro backbone (`backbone[i]` picks block `i`'s input source — `0` is
/// the embedding, `j > 0` the output of block `j - 1`; `backbone[i] <= i`).
#[derive(Clone, Debug)]
pub struct ArchSpec {
    /// Concrete model dimensions.
    pub dims: ModelDims,
    /// The micro DAG of each ST-block.
    pub blocks: Vec<BlockSpec>,
    /// The macro topology over blocks.
    pub backbone: Vec<usize>,
}
