//! Whole-architecture static resource analysis: FLOPs, bytes, peak arena
//! residency, and predicted latency for a candidate genotype — without
//! building or running a model.
//!
//! [`analyze_cost`] replays the exact step-emission order of
//! `cts_runtime::ExecPlan::compile` (embedding, per-block edges in genotype
//! order with accumulate folds, block residual, skip merge, projection
//! epilogue), pricing each step through the per-op [`OpKind::cost`]
//! contract. The per-step `flops`/`bytes` are **exact** against the
//! instrumented kernel meter; two peak-memory estimates come out of the
//! same walk:
//!
//! * `peak_bytes` — *plan-faithful*: workspace slots fill in emission order
//!   and are never freed mid-run (matching `ExecPlan`'s persistent slots),
//!   plus each step's transient scratch upper bound. This is the number to
//!   compare against observed arena residency: it must never under-count.
//! * `ideal_peak_bytes` — the liveness-interval lower target: slots are
//!   freed immediately after their last use. The gap between the two is
//!   the headroom a smarter slot allocator could reclaim.
//!
//! [`LatencyModel`] converts a cost into predicted nanoseconds with three
//! coefficients (dense flops, light flops, per-dispatch overhead), either
//! default (conservative scalar-CPU constants) or fitted in-process by
//! [`LatencyModel::calibrate`] from timed probe kernels.
//!
//! [`check_budgets`] turns a [`CostReport`] plus [`CostBudgets`] into
//! [`FindingKind::OverBudget`] findings naming the offending step — the
//! search pre-flight rejects over-budget genotypes before training spends
//! a single step on them.
//!
//! This file is under the `lint_forbidden.sh` checked-arithmetic rule:
//! every integer size/count product or sum must go through
//! `saturating_*`/`checked_*` (floating-point latency math is exempt).

use crate::check_genotype;
use crate::finding::{FindingKind, VerifyReport};
use crate::spec::ArchSpec;
use crate::VerifyError;
use cts_ops::{arena_bytes, CostCtx, OpCost, OpKind, ShapeIssue, Trace};
use cts_tensor::sym::SymDim;

/// One priced record of the flat forward program.
#[derive(Clone, Debug)]
pub struct StepCost {
    /// Where: `"embed"`, `"block0.e2"`, `"block1 residual"`,
    /// `"merge block2"`, `"output head"`.
    pub site: String,
    /// The operator kind, for op-edge steps.
    pub kind: Option<OpKind>,
    /// Exact flops/bytes plus scratch upper bound for this step (edge steps
    /// that accumulate into an already-written node include the fold add).
    pub cost: OpCost,
    /// Workspace slots this step reads.
    pub srcs: Vec<usize>,
    /// Workspace slot this step writes.
    pub dst: usize,
    /// True when `dst` is written for the first time (resident set grows).
    pub new_slot: bool,
}

/// The priced architecture: per-step costs, totals, and both peak models.
#[derive(Clone, Debug)]
pub struct CostReport {
    /// Every step in `ExecPlan` emission order.
    pub steps: Vec<StepCost>,
    /// Field-wise total over all steps (params: embedding, every operator
    /// instance, and the output head).
    pub total: OpCost,
    /// Arena-aligned bytes of one `[B, N, T, D]` workspace slot.
    pub slot_bytes: u64,
    /// Number of workspace slots the plan would allocate.
    pub num_slots: usize,
    /// Plan-faithful peak resident bytes (slots persist; never under-counts
    /// observed arena residency).
    pub peak_bytes: u64,
    /// The step at which the plan-faithful walk peaked.
    pub peak_site: String,
    /// Liveness-interval peak (slots freed after last use) — the lower
    /// target an ideal slot allocator could reach.
    pub ideal_peak_bytes: u64,
}

impl CostReport {
    /// Predicted wall-clock for one forward pass under `model`.
    pub fn predicted_ns(&self, model: &LatencyModel) -> f64 {
        model.predict_ns(&self.total)
    }

    /// The most FLOP-expensive step, when any exist.
    pub fn max_flops_step(&self) -> Option<&StepCost> {
        self.steps.iter().max_by_key(|s| s.cost.flops)
    }
}

/// Resource ceilings the pre-flight enforces; `None` disables a check.
#[derive(Clone, Copy, Debug, Default)]
pub struct CostBudgets {
    /// Reject when any single step exceeds this many FLOPs.
    pub max_flops_per_step: Option<u64>,
    /// Reject when the plan-faithful peak residency exceeds this.
    pub max_peak_bytes: Option<u64>,
    /// Reject when predicted forward latency exceeds this.
    pub max_latency_ms: Option<f32>,
}

impl CostBudgets {
    /// True when every ceiling is disabled (pre-flight can skip pricing).
    pub fn is_unbounded(&self) -> bool {
        self.max_flops_per_step.is_none()
            && self.max_peak_bytes.is_none()
            && self.max_latency_ms.is_none()
    }
}

/// Three-coefficient latency model: `ns = dense·c_d ⊕ light·c_l ⊕ calls·c_k`.
///
/// Dense flops (matmul/conv class) stream through cache-friendly inner
/// loops; "light" flops (element-wise, reductions, softmax) are memory
/// bound and cost more per flop; every kernel dispatch pays a fixed
/// pool/arena overhead.
#[derive(Clone, Copy, Debug)]
pub struct LatencyModel {
    /// Nanoseconds per dense (matmul/conv) flop.
    pub dense_ns_per_flop: f64,
    /// Nanoseconds per non-dense flop.
    pub light_ns_per_flop: f64,
    /// Fixed nanoseconds per kernel dispatch.
    pub dispatch_ns: f64,
}

impl Default for LatencyModel {
    /// Conservative single-core defaults (≈3 GFLOP/s dense, ≈4 GFLOP/s
    /// element-wise, ≈2 µs per dispatch) for budget pre-flights run before
    /// any calibration data exists. Re-calibrated against the measured
    /// family rows after the SIMD kernels landed (`bench_cost --gate`
    /// fails if these drift more than 3x from a fresh refit): vectorized
    /// element-wise/reduction passes cut the light-flop cost from the old
    /// scalar 1.25 ns/flop, while dense stays ~0.35 because the matmul
    /// microkernel was already cache-blocked.
    fn default() -> Self {
        Self {
            dense_ns_per_flop: 0.35,
            light_ns_per_flop: 0.25,
            dispatch_ns: 2_000.0,
        }
    }
}

impl LatencyModel {
    /// Predicted nanoseconds for `cost`.
    pub fn predict_ns(&self, cost: &OpCost) -> f64 {
        let dense = cost.dense_flops as f64;
        let light = cost.flops.saturating_sub(cost.dense_flops) as f64;
        let calls = cost.kernel_calls as f64;
        // f64 ns model, not buffer-size arithmetic
        dense * self.dense_ns_per_flop + light * self.light_ns_per_flop + calls * self.dispatch_ns // f64
    }

    /// Fit the three coefficients from timed probe kernels run in-process:
    /// a dense matmul prices `dense_ns_per_flop`, an element-wise chain
    /// prices `light_ns_per_flop`, and a burst of tiny ops prices
    /// `dispatch_ns` (solved sequentially, each already-known term
    /// subtracted out). Takes a few milliseconds; results are clamped to
    /// sane positive ranges so a noisy timer can never produce a zero or
    /// negative coefficient.
    pub fn calibrate() -> Self {
        use cts_obs::Stopwatch;
        use cts_tensor::{ops, Tensor};

        let median = |mut v: Vec<f64>| -> f64 {
            // invariant: samples are elapsed-time ratios, always finite
            v.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
            v[v.len() / 2]
        };

        // Dense: [64,64]·[64,64] matmul, 2·64³ flops per call.
        let a = Tensor::full(vec![64, 64], 1.01f32);
        let b = Tensor::full(vec![64, 64], 0.99f32);
        let dense_flops_per_call = 2.0f64 * 64.0 * 64.0 * 64.0;
        let mut dense_samples = Vec::new();
        for _ in 0..9 {
            let t0 = Stopwatch::start();
            let y = ops::matmul(&a, &b);
            let dt = t0.elapsed_secs() * 1e9; // f64 seconds -> ns
            assert!(!y.is_empty());
            dense_samples.push(dt / dense_flops_per_call);
        }
        let dense = median(dense_samples).clamp(0.01, 100.0);

        // Light: relu over 1<<16 elements, 1 flop per element.
        let big = Tensor::full(vec![1usize << 16], -0.5f32);
        let light_flops_per_call = (1u64 << 16) as f64;
        let mut light_samples = Vec::new();
        for _ in 0..9 {
            let t0 = Stopwatch::start();
            let y = ops::relu(&big);
            let dt = t0.elapsed_secs() * 1e9; // f64 seconds -> ns
            assert!(!y.is_empty());
            light_samples.push(dt / light_flops_per_call);
        }
        let light = median(light_samples).clamp(0.01, 100.0);

        // Dispatch: 64 tiny unary calls; subtract the (known) light cost.
        let tiny = Tensor::full(vec![8usize], 1.0f32);
        let mut disp_samples = Vec::new();
        for _ in 0..9 {
            let t0 = Stopwatch::start();
            for _ in 0..64 {
                let y = ops::relu(&tiny);
                assert!(!y.is_empty());
            }
            let dt = t0.elapsed_secs() * 1e9; // f64 seconds -> ns
            let per_call = dt / 64.0 - 8.0 * light; // f64 timing residual
            disp_samples.push(per_call);
        }
        let dispatch = median(disp_samples).clamp(10.0, 1_000_000.0);

        Self {
            dense_ns_per_flop: dense,
            light_ns_per_flop: light,
            dispatch_ns: dispatch,
        }
    }
}

fn issue_kind(issue: &ShapeIssue) -> FindingKind {
    match issue {
        ShapeIssue::Rank { .. } => FindingKind::RankError,
        ShapeIssue::Channel { .. } => FindingKind::ChannelMismatch,
        ShapeIssue::Nodes { .. } => FindingKind::NodeCountMismatch,
    }
}

/// Price a validated architecture for batch size `batch`.
///
/// The walk mirrors `ExecPlan::compile`'s emission order exactly, so the
/// per-step flops/bytes match what the instrumented meter observes during
/// one `ExecPlan::try_run` of the same genotype, bit for bit. When
/// `dims.num_nodes` is `None` the node dim prices as 1 — callers that want
/// node-count scaling must bind it.
///
/// # Errors
/// [`VerifyError`] when the genotype fails validation ([`check_genotype`])
/// or any edge's cost rule rejects its input shape.
pub fn analyze_cost(spec: &ArchSpec, batch: usize) -> Result<CostReport, VerifyError> {
    check_genotype(spec)?;
    let dims = &spec.dims;
    let nodes = dims.num_nodes.unwrap_or(1);
    let cctx = CostCtx {
        batch,
        nodes,
        width: dims.d_model,
        graph_nodes: dims.num_nodes,
        gcn_k: dims.gcn_k,
        adaptive: dims.adaptive,
        adaptive_emb: dims.adaptive_emb,
    };
    let node_dim = match dims.num_nodes {
        Some(n) => SymDim::Const(n),
        None => SymDim::Sym("N"),
    };
    let bntd = vec![
        SymDim::Sym("B"),
        node_dim,
        SymDim::Const(dims.input_len),
        SymDim::Const(dims.d_model),
    ];
    let l_elems = [batch, nodes, dims.input_len, dims.d_model]
        .iter()
        .fold(1u64, |acc, &d| acc.saturating_mul(d as u64));
    let slot_bytes = arena_bytes(l_elems);

    let mut report = VerifyReport::default();
    let mut steps: Vec<StepCost> = Vec::new();

    // Slot 0: the embedding output, Linear(features → d_model) over B·N·T.
    let rows = (batch as u64)
        .saturating_mul(nodes as u64)
        .saturating_mul(dims.input_len as u64);
    let mut tr = Trace::new();
    tr.linear(rows, dims.features as u64, dims.d_model as u64, true);
    let mut embed_cost = tr.finish();
    embed_cost.param_count = (dims.features as u64)
        .saturating_mul(dims.d_model as u64)
        .saturating_add(dims.d_model as u64);
    steps.push(StepCost {
        site: "embed".into(),
        kind: None,
        cost: embed_cost,
        srcs: Vec::new(),
        dst: 0,
        new_slot: true,
    });

    let mut next_slot = 1usize;
    let mut source_slots = vec![0usize];
    let mut block_out_slots = Vec::with_capacity(spec.blocks.len());
    for (bi, block) in spec.blocks.iter().enumerate() {
        let input_slot = source_slots[spec.backbone[bi]];
        let mut node_slots = vec![input_slot];
        for j in 1..block.m {
            let dst = next_slot;
            next_slot = next_slot.saturating_add(1);
            let mut first = true;
            for (ei, (from, to, op)) in block.edges.iter().enumerate() {
                if *to != j {
                    continue;
                }
                let site = format!("block{bi}.e{ei}");
                match op.cost(&bntd, &cctx) {
                    Ok(edge_cost) => {
                        let cost = if first {
                            edge_cost
                        } else {
                            // Accumulate fold: acc = ops::add(acc, y).
                            let mut fold = Trace::new();
                            fold.zip_same(l_elems);
                            edge_cost.saturating_add(&fold.finish())
                        };
                        steps.push(StepCost {
                            site,
                            kind: Some(*op),
                            cost,
                            srcs: vec![node_slots[*from]],
                            dst,
                            new_slot: first,
                        });
                    }
                    Err(issue) => {
                        report.error(
                            issue_kind(&issue),
                            site,
                            format!(
                                "edge e{ei} ({from}→{to}, {op}) of block{bi} cannot be priced: {issue}"
                            ),
                        );
                    }
                }
                first = false;
            }
            node_slots.push(dst);
        }
        // Block residual: resid = block_out ⊕ block_in.
        // invariant: check_genotype rejected m < 2 before pricing
        let out_slot = *node_slots.last().expect("m ≥ 2 checked");
        let dst = next_slot;
        next_slot = next_slot.saturating_add(1);
        let mut resid = Trace::new();
        resid.zip_same(l_elems);
        steps.push(StepCost {
            site: format!("block{bi} residual"),
            kind: None,
            cost: resid.finish(),
            srcs: vec![out_slot, input_slot],
            dst,
            new_slot: true,
        });
        source_slots.push(dst);
        block_out_slots.push(dst);
    }

    // Skip-merge fold over block outputs, in block order.
    let mut merged = block_out_slots[0];
    for (bi, &next) in block_out_slots.iter().enumerate().skip(1) {
        let dst = next_slot;
        next_slot = next_slot.saturating_add(1);
        let mut fold = Trace::new();
        fold.zip_same(l_elems);
        steps.push(StepCost {
            site: format!("merge block{bi}"),
            kind: None,
            cost: fold.finish(),
            srcs: vec![merged, next],
            dst,
            new_slot: true,
        });
        merged = dst;
    }

    // Projection epilogue: relu → flatten → output linear → affine.
    let bn = (batch as u64).saturating_mul(nodes as u64);
    let bnq = bn.saturating_mul(dims.horizon as u64);
    let flat_width = (dims.input_len as u64).saturating_mul(dims.d_model as u64);
    let mut epi = Trace::new();
    epi.unary(l_elems); // relu (reshaped view is free)
    epi.linear(bn, flat_width, dims.horizon as u64, true);
    epi.unary(bnq); // scale
    epi.unary(bnq); // add_scalar
    let mut epi_cost = epi.finish();
    epi_cost.param_count = flat_width
        .saturating_mul(dims.horizon as u64)
        .saturating_add(dims.horizon as u64);
    steps.push(StepCost {
        site: "output head".into(),
        kind: None,
        cost: epi_cost,
        srcs: vec![merged],
        dst: merged,
        new_slot: false,
    });

    if !report.is_ok() {
        return Err(VerifyError { report });
    }

    // Plan-faithful peak: slots persist once filled; each step's transient
    // scratch rides on top of the resident set at that moment.
    let mut filled = vec![false; next_slot];
    let mut resident = 0u64;
    let mut peak = 0u64;
    let mut peak_site = String::new();
    for s in &steps {
        let candidate = resident.saturating_add(s.cost.scratch_bytes);
        if candidate > peak {
            peak = candidate;
            peak_site = s.site.clone();
        }
        if s.new_slot && !filled[s.dst] {
            filled[s.dst] = true;
            resident = resident.saturating_add(slot_bytes);
        }
    }

    // Ideal liveness-interval peak: free every slot after its last read.
    let mut last_use = vec![usize::MAX; next_slot];
    for (i, s) in steps.iter().enumerate() {
        for &src in &s.srcs {
            last_use[src] = i;
        }
    }
    let mut live = vec![false; next_slot];
    let mut live_bytes = 0u64;
    let mut ideal = 0u64;
    for (i, s) in steps.iter().enumerate() {
        if s.new_slot && !live[s.dst] {
            live[s.dst] = true;
            live_bytes = live_bytes.saturating_add(slot_bytes);
        }
        let candidate = live_bytes.saturating_add(s.cost.scratch_bytes);
        if candidate > ideal {
            ideal = candidate;
        }
        for &src in &s.srcs {
            if live[src] && last_use[src] == i {
                live[src] = false;
                live_bytes = live_bytes.saturating_sub(slot_bytes);
            }
        }
    }

    let total = steps
        .iter()
        .fold(OpCost::default(), |acc, s| acc.saturating_add(&s.cost));
    Ok(CostReport {
        steps,
        total,
        slot_bytes,
        num_slots: next_slot,
        peak_bytes: peak,
        peak_site,
        ideal_peak_bytes: ideal,
    })
}

/// Check a priced architecture against resource budgets, recording an
/// [`FindingKind::OverBudget`] error finding (naming the offending step)
/// for every exceeded ceiling.
pub fn check_budgets(
    report: &mut VerifyReport,
    cost: &CostReport,
    budgets: &CostBudgets,
    model: &LatencyModel,
) {
    if let Some(cap) = budgets.max_flops_per_step {
        for s in cost.steps.iter().filter(|s| s.cost.flops > cap) {
            let opname = s
                .kind
                .map_or_else(|| "fixed stage".to_string(), |k| k.to_string());
            report.error(
                FindingKind::OverBudget,
                s.site.clone(),
                format!(
                    "step {site} ({opname}) needs {flops} FLOPs, over the {cap} per-step budget",
                    site = s.site,
                    flops = s.cost.flops,
                ),
            );
        }
    }
    if let Some(cap) = budgets.max_peak_bytes {
        if cost.peak_bytes > cap {
            report.error(
                FindingKind::OverBudget,
                cost.peak_site.clone(),
                format!(
                    "peak resident estimate {peak} bytes (at {site}) exceeds the {cap}-byte arena budget",
                    peak = cost.peak_bytes,
                    site = cost.peak_site,
                ),
            );
        }
    }
    if let Some(cap_ms) = budgets.max_latency_ms {
        let ns = cost.predicted_ns(model);
        let cap_ns = f64::from(cap_ms) * 1.0e6;
        if ns > cap_ns {
            let worst = cost
                .max_flops_step()
                .map_or_else(|| "?".to_string(), |s| s.site.clone());
            report.error(
                FindingKind::OverBudget,
                "model",
                format!(
                    "predicted forward latency {ms:.3} ms exceeds the {cap_ms} ms budget (heaviest step: {worst})",
                    ms = ns / 1.0e6,
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{BlockSpec, ModelDims};

    fn dims() -> ModelDims {
        ModelDims {
            features: 2,
            input_len: 12,
            horizon: 12,
            d_model: 8,
            num_nodes: Some(5),
            gcn_k: 2,
            adaptive: false,
            adaptive_emb: 0,
        }
    }

    fn healthy_block() -> BlockSpec {
        BlockSpec {
            m: 3,
            edges: vec![
                (0, 1, OpKind::Gdcc),
                (0, 2, OpKind::InformerS),
                (1, 2, OpKind::Identity),
            ],
        }
    }

    fn arch(blocks: Vec<BlockSpec>, backbone: Vec<usize>) -> ArchSpec {
        ArchSpec {
            dims: dims(),
            blocks,
            backbone,
        }
    }

    #[test]
    fn prices_a_healthy_architecture() {
        let spec = arch(vec![healthy_block(), healthy_block()], vec![0, 1]);
        let report = analyze_cost(&spec, 4).expect("healthy arch prices");
        // embed + 2×(3 edges + residual) + 1 merge + output head = 11 steps.
        assert_eq!(report.steps.len(), 11);
        assert!(report.total.flops > 0);
        assert!(report.total.param_count > 0);
        assert!(report.total.bytes_read > 0);
        assert!(report.peak_bytes >= report.ideal_peak_bytes);
        assert!(report.peak_bytes >= report.slot_bytes);
        assert!(!report.peak_site.is_empty());
        assert!(report.total.dense_flops <= report.total.flops);
    }

    #[test]
    fn cost_grows_with_batch() {
        let spec = arch(vec![healthy_block()], vec![0]);
        let small = analyze_cost(&spec, 1).unwrap();
        let big = analyze_cost(&spec, 8).unwrap();
        assert!(big.total.flops > small.total.flops);
        assert!(big.peak_bytes > small.peak_bytes);
        // Parameters are batch-independent.
        assert_eq!(big.total.param_count, small.total.param_count);
    }

    #[test]
    fn invalid_genotype_is_rejected_before_pricing() {
        let broken = BlockSpec {
            m: 3,
            edges: vec![(0, 1, OpKind::Gdcc)], // node 2 dangling
        };
        let err = analyze_cost(&arch(vec![broken], vec![0]), 1).unwrap_err();
        assert!(!err.report.is_ok());
    }

    #[test]
    fn per_step_flops_budget_names_the_offending_edge() {
        let spec = arch(vec![healthy_block()], vec![0]);
        let cost = analyze_cost(&spec, 4).unwrap();
        let heavy = cost.max_flops_step().unwrap();
        let budgets = CostBudgets {
            max_flops_per_step: Some(heavy.cost.flops.saturating_sub(1)),
            ..CostBudgets::default()
        };
        let mut report = VerifyReport::default();
        check_budgets(&mut report, &cost, &budgets, &LatencyModel::default());
        let f = report
            .errors()
            .find(|f| f.kind == FindingKind::OverBudget)
            .expect("over-budget finding");
        assert_eq!(f.site, heavy.site);
        assert!(f.message.contains("FLOPs"), "{}", f.message);
    }

    #[test]
    fn peak_and_latency_budgets_fire() {
        let spec = arch(vec![healthy_block()], vec![0]);
        let cost = analyze_cost(&spec, 4).unwrap();
        let budgets = CostBudgets {
            max_peak_bytes: Some(1),
            max_latency_ms: Some(0.0),
            ..CostBudgets::default()
        };
        let mut report = VerifyReport::default();
        check_budgets(&mut report, &cost, &budgets, &LatencyModel::default());
        let over: Vec<_> = report
            .errors()
            .filter(|f| f.kind == FindingKind::OverBudget)
            .collect();
        assert_eq!(over.len(), 2, "{over:?}");
        // Generous budgets pass clean.
        let mut ok = VerifyReport::default();
        check_budgets(
            &mut ok,
            &cost,
            &CostBudgets {
                max_flops_per_step: Some(u64::MAX),
                max_peak_bytes: Some(u64::MAX),
                max_latency_ms: Some(f32::MAX),
            },
            &LatencyModel::default(),
        );
        assert!(ok.is_ok(), "{:?}", ok.findings);
    }

    #[test]
    fn latency_model_orders_architectures_sensibly() {
        let small = analyze_cost(&arch(vec![healthy_block()], vec![0]), 1).unwrap();
        let large =
            analyze_cost(&arch(vec![healthy_block(), healthy_block()], vec![0, 1]), 1).unwrap();
        let m = LatencyModel::default();
        assert!(large.predicted_ns(&m) > small.predicted_ns(&m));
        assert!(small.predicted_ns(&m) > 0.0);
    }

    #[test]
    fn calibration_produces_sane_coefficients() {
        let m = LatencyModel::calibrate();
        assert!(m.dense_ns_per_flop > 0.0 && m.dense_ns_per_flop.is_finite());
        assert!(m.light_ns_per_flop > 0.0 && m.light_ns_per_flop.is_finite());
        assert!(m.dispatch_ns > 0.0 && m.dispatch_ns.is_finite());
    }

    #[test]
    fn unbounded_budgets_detected() {
        assert!(CostBudgets::default().is_unbounded());
        assert!(!CostBudgets {
            max_peak_bytes: Some(1),
            ..CostBudgets::default()
        }
        .is_unbounded());
    }
}
