//! `cts-verify` — static analyzer for AutoCTS candidate architectures.
//!
//! The joint micro+macro search space of AutoCTS is discrete and fully
//! describable without running a model: an [`ArchSpec`] names the block
//! DAGs, the operator on every edge, and the backbone wiring. This crate
//! performs abstract interpretation over that description — no tensors are
//! allocated, no model is built — and reports, per architecture:
//!
//! 1. **Symbolic shape inference** ([`validate_genotype`]): every operator
//!    exposes a `shape_fn` ([`OpKind::infer_shape`]) mapping a symbolic
//!    input shape to its output shape. The analyzer walks the embedding,
//!    every block DAG, the residual/skip sums, and the output head,
//!    inferring each intermediate shape and flagging rank errors, channel
//!    mismatches, broadcast-incompatible sums, and dims that fail to
//!    round-trip `[B, N, T, D]` through the ST-backbone.
//! 2. **Gradient reachability**: a static liveness pass over the op DAG
//!    proving every trainable parameter is reachable from the loss through
//!    at least one non-`zero` path, and flagging dead nodes and starved
//!    parameters. Its edge-liveness verdict is designed to agree *exactly*
//!    with the runtime tape audit (`Tape::reachable_params` in
//!    `cts-autograd`), which the sweep binary cross-checks.
//! 3. **Determinism audit** ([`audit_determinism`]): every parallel tensor
//!    kernel must be registered with an order-fixed partition/reduction
//!    strategy; the audit machine-checks the registry invariants.
//!
//! Errors mean "reject this architecture before spending a training run on
//! it"; warnings mean "trainable, but part of the compute is wasted".

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analyze;
mod cost;
mod determinism;
mod finding;
mod spec;

pub use analyze::{validate_block, validate_genotype};
pub use cost::{analyze_cost, check_budgets, CostBudgets, CostReport, LatencyModel, StepCost};
pub use determinism::{audit_determinism, DeterminismReport, KernelEntry};
pub use finding::{Finding, FindingKind, Severity, VerifyError, VerifyReport};
pub use spec::{ArchSpec, BlockSpec, ModelDims};

// Re-exported so downstream callers can name the shape-fn and cost-fn
// types without depending on cts-ops directly.
pub use cts_ops::{CostCtx, OpCost, OpKind, ShapeCtx, ShapeIssue};

/// Validate and convert to a `Result`: `Ok(report)` when no error-severity
/// finding was recorded, `Err(VerifyError)` otherwise (warnings ride along
/// inside the report either way).
pub fn check_genotype(spec: &ArchSpec) -> Result<VerifyReport, VerifyError> {
    let report = validate_genotype(spec);
    if report.is_ok() {
        Ok(report)
    } else {
        Err(VerifyError { report })
    }
}
