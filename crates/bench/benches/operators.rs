//! Criterion microbenchmarks: forward throughput of every S/T operator
//! (the "efficiency" axis of Figure 6 / Table 2 at operator granularity).

use criterion::{criterion_group, criterion_main, Criterion};
use cts_autograd::Tape;
use cts_graph::{random_geometric_graph, GraphGenConfig};
use cts_ops::{build_operator, full_set, GraphContext};
use cts_tensor::ops::{self, reference};
use cts_tensor::{init, parallel};
use rand::{rngs::SmallRng, SeedableRng};

fn bench_operators(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(0);
    let g = random_geometric_graph(&mut rng, &GraphGenConfig { n: 16, ..Default::default() });
    let ctx = GraphContext::from_graph(&g, 2);
    let d = 16;
    let x_data = init::uniform(&mut rng, [4, 16, 12, d], -1.0, 1.0);

    let mut group = c.benchmark_group("operator_forward");
    for kind in full_set() {
        if !kind.is_parametric() {
            continue;
        }
        let op = build_operator(&mut rng, kind, "bench", d, 2, false);
        group.bench_function(kind.label(), |b| {
            b.iter(|| {
                let tape = Tape::new();
                let x = tape.constant(x_data.clone());
                std::hint::black_box(op.forward(&tape, &x, &ctx).value())
            })
        });
    }
    group.finish();
}

/// Serial-vs-parallel (and naive-vs-blocked) throughput for the tensor
/// kernels the operators bottom out in. `reference` is the seed repo's
/// naive serial loop; `threads=1` is the optimized (cache-blocked, packed)
/// kernel pinned to one worker; higher thread counts exercise the scoped
/// pool. On a single-core host the threaded rows simply confirm there is
/// no partitioning overhead regression.
fn bench_parallel_kernels(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(1);
    // Projection-heavy shape from the supernet: [B, N, T, d] x [d, d'].
    let a = init::uniform(&mut rng, [8, 16, 48, 64], -1.0, 1.0);
    let w = init::uniform(&mut rng, [64, 64], -1.0, 1.0);
    let logits = init::uniform(&mut rng, [8, 16, 48, 48], -4.0, 4.0);

    let mut group = c.benchmark_group("matmul_batched_large");
    group.bench_function("reference", |b| {
        b.iter(|| std::hint::black_box(reference::matmul(&a, &w)))
    });
    for threads in [1usize, 2, 4] {
        parallel::set_num_threads(threads);
        group.bench_function(format!("threads={threads}"), |b| {
            b.iter(|| std::hint::black_box(ops::matmul(&a, &w)))
        });
    }
    parallel::set_num_threads(0);
    group.finish();

    let mut group = c.benchmark_group("softmax_last_large");
    group.bench_function("reference", |b| {
        b.iter(|| std::hint::black_box(reference::softmax_last(&logits)))
    });
    for threads in [1usize, 4] {
        parallel::set_num_threads(threads);
        group.bench_function(format!("threads={threads}"), |b| {
            b.iter(|| std::hint::black_box(ops::softmax_last(&logits)))
        });
    }
    parallel::set_num_threads(0);
    group.finish();

    let mut group = c.benchmark_group("elementwise_add_large");
    group.bench_function("reference", |b| {
        b.iter(|| std::hint::black_box(reference::add(&a, &a)))
    });
    for threads in [1usize, 4] {
        parallel::set_num_threads(threads);
        group.bench_function(format!("threads={threads}"), |b| {
            b.iter(|| std::hint::black_box(ops::add(&a, &a)))
        });
    }
    parallel::set_num_threads(0);
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_operators, bench_parallel_kernels
}
criterion_main!(benches);
