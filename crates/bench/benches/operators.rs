//! Criterion microbenchmarks: forward throughput of every S/T operator
//! (the "efficiency" axis of Figure 6 / Table 2 at operator granularity).

use criterion::{criterion_group, criterion_main, Criterion};
use cts_autograd::Tape;
use cts_graph::{random_geometric_graph, GraphGenConfig};
use cts_ops::{build_operator, full_set, GraphContext};
use cts_tensor::init;
use rand::{rngs::SmallRng, SeedableRng};

fn bench_operators(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(0);
    let g = random_geometric_graph(&mut rng, &GraphGenConfig { n: 16, ..Default::default() });
    let ctx = GraphContext::from_graph(&g, 2);
    let d = 16;
    let x_data = init::uniform(&mut rng, [4, 16, 12, d], -1.0, 1.0);

    let mut group = c.benchmark_group("operator_forward");
    for kind in full_set() {
        if !kind.is_parametric() {
            continue;
        }
        let op = build_operator(&mut rng, kind, "bench", d);
        group.bench_function(kind.label(), |b| {
            b.iter(|| {
                let tape = Tape::new();
                let x = tape.constant(x_data.clone());
                std::hint::black_box(op.forward(&tape, &x, &ctx).value())
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_operators
}
criterion_main!(benches);
