//! Criterion benchmark: cost of one bi-level search step pair (Θ update +
//! w update) on the supernet — the unit behind Table 7's search times.

use criterion::{criterion_group, criterion_main, Criterion};
use cts_autograd::Tape;
use cts_bench::{prepare, ExpContext};
use cts_data::{batches_from_windows, DatasetSpec};
use cts_nn::{Adam, Forecaster, LossKind, Optimizer};
use rand::{rngs::SmallRng, SeedableRng};

fn bench_search_step(c: &mut Criterion) {
    let ctx = ExpContext::smoke();
    let p = prepare(&ctx, &DatasetSpec::metr_la());
    let cfg = ctx.search_config();
    let mut rng = SmallRng::seed_from_u64(0);
    let model = autocts::SupernetModel::new(&mut rng, &cfg, &p.spec, &p.data.graph, &p.windows.scaler);
    let batches = batches_from_windows(&p.windows.train, ctx.batch);
    let (x, y) = batches[0].clone();
    let mut arch_opt = Adam::for_architecture(model.arch_parameters(), cfg.arch_lr, cfg.arch_wd);
    let mut weight_opt = Adam::new(model.weight_parameters(), cfg.weight_lr, cfg.weight_wd);
    let loss_kind = LossKind::MaskedMae { null_value: Some(0.0) };

    // One row per worker count: serial (threads=1, the CTS_NUM_THREADS=1
    // path) against the scoped pool, end-to-end through forward + backward.
    for threads in [1usize, 2, 4] {
        cts_tensor::parallel::set_num_threads(threads);
        c.bench_function(format!("supernet_bilevel_step/threads={threads}"), |b| {
            b.iter(|| {
                // Θ step
                let tape = Tape::new();
                let pred = model.forward(&tape, &tape.constant(x.clone()));
                let loss = loss_kind.compute(&tape, &pred, &y);
                tape.backward(&loss);
                for pm in weight_opt.params() {
                    pm.zero_grad();
                }
                arch_opt.step();
                // w step
                let tape = Tape::new();
                let pred = model.forward(&tape, &tape.constant(x.clone()));
                let loss = loss_kind.compute(&tape, &pred, &y);
                tape.backward(&loss);
                for pm in arch_opt.params() {
                    pm.zero_grad();
                }
                weight_opt.step();
            })
        });
    }
    cts_tensor::parallel::set_num_threads(0);
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_search_step
}
criterion_main!(benches);
