//! Criterion benchmarks: inference latency per window for every baseline
//! and a derived AutoCTS model (the "Inference (ms/window)" columns of
//! Tables 27–34).

use criterion::{criterion_group, criterion_main, Criterion};
use cts_autograd::Tape;
use cts_bench::{autocts_search_and_eval, build_baseline, prepare, ExpContext, BASELINE_NAMES};
use cts_data::{batches_from_windows, DatasetSpec};
use cts_nn::Forecaster;

fn bench_models(c: &mut Criterion) {
    let ctx = ExpContext::smoke();
    let p = prepare(&ctx, &DatasetSpec::metr_la());
    let batches = batches_from_windows(&p.windows.test, 4);
    let (x, _) = batches[0].clone();

    let mut group = c.benchmark_group("model_inference");
    for name in BASELINE_NAMES {
        let model = build_baseline(name, &ctx, &p);
        group.bench_function(name, |b| {
            b.iter(|| {
                let tape = Tape::new();
                let xv = tape.constant(x.clone());
                std::hint::black_box(model.forward(&tape, &xv).value())
            })
        });
    }
    // a quickly searched AutoCTS architecture
    let (outcome, _) = autocts_search_and_eval(&ctx.search_config(), &ctx, &p);
    let mut rng = rand::rngs::SmallRng::seed_from_u64(0);
    use rand::SeedableRng;
    let model = autocts::DerivedModel::new(
        &mut rng,
        &ctx.search_config(),
        &outcome.genotype,
        &p.spec,
        &p.data.graph,
        &p.windows.scaler,
    );
    group.bench_function("AutoCTS", |b| {
        b.iter(|| {
            let tape = Tape::new();
            let xv = tape.constant(x.clone());
            std::hint::black_box(model.forward(&tape, &xv).value())
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_models
}
criterion_main!(benches);
