//! Single-operator probe models for the variant pre-study (Table 3) and
//! the T-operator family comparison (Figure 6).

use crate::{ExpContext, Prepared};
use autocts::eval::{train_and_evaluate, EvalReport};
use cts_autograd::{Parameter, Tape, Var};
use cts_nn::{Forecaster, Linear, LossKind, TrainConfig};
use cts_ops::{build_operator, GraphContext, OpKind, StOperator};
use rand::{rngs::SmallRng, SeedableRng};

/// Embedding → two stacked instances of one operator (with residuals) →
/// output head: isolates a single operator's contribution so variants can
/// be compared head-to-head in an identical scaffold.
pub struct SingleOpModel {
    embed: Linear,
    ops: Vec<Box<dyn StOperator>>,
    output: Linear,
    ctx: GraphContext,
    input_len: usize,
    d: usize,
    out_scale: f32,
    out_shift: f32,
    label: String,
}

impl SingleOpModel {
    /// Build a probe for `kind`.
    pub fn new(kind: OpKind, ctx_exp: &ExpContext, p: &Prepared) -> Self {
        let mut rng = SmallRng::seed_from_u64(ctx_exp.seed ^ kind.label().len() as u64);
        let d = ctx_exp.d_model;
        let spec = &p.spec;
        let q = match spec.task {
            cts_data::Task::MultiStep => spec.output_len,
            cts_data::Task::SingleStep { .. } => 1,
        };
        let graph_ctx = {
            let c = GraphContext::from_graph(&p.data.graph, 2);
            if c.has_spatial_signal() {
                c
            } else {
                GraphContext::from_graph(&p.data.graph, 2).with_adaptive(&mut rng, 8)
            }
        };
        Self {
            embed: Linear::new(&mut rng, "so.embed", spec.features, d, true),
            ops: (0..2)
                .map(|i| {
                    build_operator(&mut rng, kind, &format!("so.{i}"), d, 2, graph_ctx.has_adaptive())
                })
                .collect(),
            output: Linear::new(&mut rng, "so.out", spec.input_len * d, q, true),
            ctx: graph_ctx,
            input_len: spec.input_len,
            d,
            out_scale: p.windows.scaler.target_std(),
            out_shift: p.windows.scaler.target_mean(),
            label: kind.label().to_string(),
        }
    }
}

impl Forecaster for SingleOpModel {
    fn forward(&self, tape: &Tape, x: &Var) -> Var {
        let mut h = self.embed.forward(tape, x);
        for op in &self.ops {
            h = op.forward(tape, &h, &self.ctx).add(&h);
        }
        let s = h.shape();
        let flat = h.relu().reshape(&[s[0], s[1], self.input_len * self.d]);
        self.output
            .forward(tape, &flat)
            .scale(self.out_scale)
            .add_scalar(self.out_shift)
    }

    fn parameters(&self) -> Vec<Parameter> {
        let mut v = self.embed.parameters();
        for op in &self.ops {
            v.extend(op.parameters());
        }
        v.extend(self.output.parameters());
        v.extend(self.ctx.parameters());
        v
    }

    fn name(&self) -> &str {
        &self.label
    }
}

/// Train a single-operator probe and report test metrics.
pub fn train_single_op_model(kind: OpKind, ctx: &ExpContext, p: &Prepared) -> EvalReport {
    let model = SingleOpModel::new(kind, ctx, p);
    let cfg = TrainConfig {
        epochs: ctx.baseline_epochs,
        lr: 1e-3,
        weight_decay: 1e-4,
        clip: 5.0,
        loss: LossKind::MaskedMae {
            null_value: p.spec.null_value,
        },
        patience: 0,
        ..TrainConfig::default()
    };
    train_and_evaluate(&model, &p.spec, &p.windows, &cfg, ctx.batch)
        .unwrap_or_else(|e| panic!("single-op probe training failed: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prepare;
    use cts_data::DatasetSpec;

    #[test]
    fn probe_runs_for_spatial_and_temporal_ops() {
        let ctx = ExpContext::smoke();
        let p = prepare(&ctx, &DatasetSpec::metr_la());
        for kind in [OpKind::Dgcn, OpKind::Gdcc] {
            let report = train_single_op_model(kind, &ctx, &p);
            assert!(report.overall.mae.is_finite());
            assert!(report.parameters > 0);
        }
    }
}
