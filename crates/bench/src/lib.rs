//! `cts-bench`: the experiment harness that regenerates every table and
//! figure of the paper's evaluation (§4).
//!
//! One binary per experiment lives in `src/bin/`; each delegates to a
//! function in [`experiments`] so `run_all` can execute the full study.
//! Scale knobs come from environment variables (see [`ExpContext`]) so the
//! same harness runs in seconds (CI) or tens of minutes (full report).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
mod harness;
mod macro_only;
mod singleop;

pub use harness::{
    autocts_search_and_eval, autostg_config, build_baseline, prepare, print_table, run_baseline,
    window, ExpContext, Prepared, BASELINE_NAMES,
};
pub use macro_only::{macro_only_search_and_eval, MacroOnlyModel};
pub use singleop::{train_single_op_model, SingleOpModel};
