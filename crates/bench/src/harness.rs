//! Shared experiment plumbing: scaling knobs, dataset preparation, the
//! baseline model zoo, and table formatting.

use autocts::eval::{train_and_evaluate, EvalReport};
use autocts::{AutoCts, SearchConfig, SearchOutcome};
use cts_baselines::{Agcrn, BaselineConfig, Dcrnn, GraphWaveNet, LstNet, Mtgnn, Stgcn, TpaLstm};
use cts_data::{build_windows, generate, CtsData, DatasetSpec, SplitWindows, Task};
use cts_nn::{Forecaster, LossKind, TrainConfig};
use cts_ops::OpKind;

/// Scale and budget knobs for every experiment, read from the environment:
///
/// | Variable | Default | Meaning |
/// |---|---|---|
/// | `NODES` | 16 | target sensors per dataset |
/// | `STEPS` | 1200 | target timestamps per dataset |
/// | `WINDOW_CAP` | 48 | max windows per split (multi-step) |
/// | `SEARCH_EPOCHS` | 3 | supernet search epochs |
/// | `EVAL_EPOCHS` | 8 | architecture-evaluation retraining epochs |
/// | `BASELINE_EPOCHS` | 8 | baseline training epochs |
/// | `BATCH` | 8 | mini-batch size |
/// | `D_MODEL` | 16 | hidden width (AutoCTS and baselines) |
/// | `SEED` | 1 | global seed |
#[derive(Clone, Debug)]
pub struct ExpContext {
    /// Target node count per dataset.
    pub nodes: usize,
    /// Target total timestamps per dataset.
    pub steps: usize,
    /// Max windows per split for multi-step tasks.
    pub window_cap: usize,
    /// Supernet search epochs.
    pub search_epochs: usize,
    /// Derived-model retraining epochs.
    pub eval_epochs: usize,
    /// Baseline training epochs.
    pub baseline_epochs: usize,
    /// Mini-batch size.
    pub batch: usize,
    /// Hidden width.
    pub d_model: usize,
    /// Global seed.
    pub seed: u64,
    /// Limit the dataset sweeps of Tables 7/9-16/17-26/27-34 to the first
    /// `k` datasets (0 = all eight). The limited order interleaves task
    /// types: METR-LA, PEMS03, Electricity, PEMS-BAY, PEMS04, PEMS08,
    /// PEMS07, Solar-Energy.
    pub dataset_limit: usize,
    /// History length used for single-step tasks (`SS_INPUT`, default 96;
    /// the paper uses 168 — still "long" relative to the 12-step
    /// multi-step tasks, but CPU-affordable).
    pub singlestep_input: usize,
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

impl Default for ExpContext {
    fn default() -> Self {
        Self {
            nodes: 16,
            steps: 1200,
            window_cap: 48,
            search_epochs: 3,
            eval_epochs: 8,
            baseline_epochs: 8,
            batch: 8,
            d_model: 16,
            seed: 1,
            dataset_limit: 0,
            singlestep_input: 96,
        }
    }
}

impl ExpContext {
    /// Read knobs from the environment (defaults above).
    pub fn from_env() -> Self {
        let d = Self::default();
        Self {
            nodes: env_usize("NODES", d.nodes),
            steps: env_usize("STEPS", d.steps),
            window_cap: env_usize("WINDOW_CAP", d.window_cap),
            search_epochs: env_usize("SEARCH_EPOCHS", d.search_epochs),
            eval_epochs: env_usize("EVAL_EPOCHS", d.eval_epochs),
            baseline_epochs: env_usize("BASELINE_EPOCHS", d.baseline_epochs),
            batch: env_usize("BATCH", d.batch),
            d_model: env_usize("D_MODEL", d.d_model),
            seed: env_usize("SEED", d.seed as usize) as u64,
            dataset_limit: env_usize("DATASET_LIMIT", d.dataset_limit),
            singlestep_input: env_usize("SS_INPUT", d.singlestep_input),
        }
    }

    /// A drastically reduced context for smoke tests.
    pub fn smoke() -> Self {
        Self {
            nodes: 8,
            steps: 420,
            window_cap: 16,
            search_epochs: 1,
            eval_epochs: 2,
            baseline_epochs: 2,
            batch: 4,
            d_model: 8,
            seed: 1,
            dataset_limit: 2,
            singlestep_input: 36,
        }
    }

    /// Batch size adjusted for the task: single-step tasks have 14x longer
    /// inputs, so their batches shrink to keep activation memory bounded.
    pub fn batch_for(&self, spec: &DatasetSpec) -> usize {
        match spec.task {
            Task::MultiStep => self.batch,
            Task::SingleStep { .. } => (self.batch / 2).max(2),
        }
    }

    /// The AutoCTS search configuration for a specific dataset.
    pub fn search_config_for(&self, spec: &DatasetSpec) -> SearchConfig {
        SearchConfig {
            batch_size: self.batch_for(spec),
            ..self.search_config()
        }
    }

    /// The default AutoCTS search configuration under these knobs.
    pub fn search_config(&self) -> SearchConfig {
        SearchConfig {
            d_model: self.d_model,
            epochs: self.search_epochs,
            batch_size: self.batch,
            seed: self.seed,
            ..Default::default()
        }
    }

    /// Baseline construction knobs.
    pub fn baseline_config(&self) -> BaselineConfig {
        BaselineConfig {
            hidden: self.d_model,
            seed: self.seed,
            ..Default::default()
        }
    }
}

/// A generated, windowed dataset ready for experiments.
pub struct Prepared {
    /// The scaled spec actually used.
    pub spec: DatasetSpec,
    /// Generated values + graph.
    pub data: CtsData,
    /// Standardised windows with chronological splits.
    pub windows: SplitWindows,
}

/// Stable per-dataset fingerprint: distinguishes datasets after scaling
/// maps them all to similar sizes (each dataset must still get its own
/// series, graph, and slightly different N/T — mirroring Table 4's
/// variety).
fn name_fingerprint(name: &str) -> u64 {
    name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
    })
}

/// Generate and window a dataset at the context's scale.
pub fn prepare(ctx: &ExpContext, spec: &DatasetSpec) -> Prepared {
    let fp = name_fingerprint(&spec.name);
    // vary the target size a little per dataset so costs differ (Table 7)
    let nodes = ctx.nodes + (fp % 5) as usize;
    let steps = ctx.steps + (fp % 7) as usize * 40;
    let node_scale = nodes as f32 / spec.n as f32;
    let time_scale = steps as f32 / spec.t as f32;
    let mut scaled = spec.scaled(node_scale, time_scale);
    if matches!(scaled.task, Task::SingleStep { .. }) {
        scaled.input_len = scaled.input_len.min(ctx.singlestep_input);
    }
    let data = generate(&scaled, ctx.seed ^ fp);
    let windows = window(ctx, &data);
    Prepared {
        spec: scaled,
        data,
        windows,
    }
}

/// Window a dataset exactly as [`prepare`] does — exposed so robustness
/// probes can re-window an adversarially corrupted copy of the same data
/// on the same grid.
pub fn window(ctx: &ExpContext, data: &CtsData) -> SplitWindows {
    let spec = &data.spec;
    // Single-step tasks have long inputs: thin the window grid harder.
    let (stride, cap) = match spec.task {
        Task::MultiStep => {
            let stride = (spec.max_windows() / (4 * ctx.window_cap)).max(1);
            (stride, ctx.window_cap)
        }
        Task::SingleStep { .. } => {
            let cap = (ctx.window_cap / 2).max(8);
            let stride = (spec.max_windows() / (4 * cap)).max(1);
            (stride, cap)
        }
    };
    build_windows(data, stride, cap)
}

/// All seven human-designed baseline names, in the tables' order.
pub const BASELINE_NAMES: [&str; 7] = [
    "DCRNN",
    "STGCN",
    "Graph WaveNet",
    "AGCRN",
    "LSTNet",
    "TPA-LSTM",
    "MTGNN",
];

/// Instantiate a baseline by name.
pub fn build_baseline(name: &str, ctx: &ExpContext, p: &Prepared) -> Box<dyn Forecaster> {
    let cfg = ctx.baseline_config();
    let (spec, graph, scaler) = (&p.spec, &p.data.graph, &p.windows.scaler);
    match name {
        "DCRNN" => Box::new(Dcrnn::new(&cfg, spec, graph, scaler)),
        "STGCN" => Box::new(Stgcn::new(&cfg, spec, graph, scaler)),
        "Graph WaveNet" => Box::new(GraphWaveNet::new(&cfg, spec, graph, scaler)),
        "AGCRN" => Box::new(Agcrn::new(&cfg, spec, graph, scaler)),
        "LSTNet" => Box::new(LstNet::new(&cfg, spec, graph, scaler)),
        "TPA-LSTM" => Box::new(TpaLstm::new(&cfg, spec, graph, scaler)),
        "MTGNN" => Box::new(Mtgnn::new(&cfg, spec, graph, scaler)),
        other => panic!("unknown baseline {other}"),
    }
}

/// Train a baseline and evaluate on the test split.
pub fn run_baseline(name: &str, ctx: &ExpContext, p: &Prepared) -> EvalReport {
    let model = build_baseline(name, ctx, p);
    let cfg = TrainConfig {
        epochs: ctx.baseline_epochs,
        lr: 1e-3,
        weight_decay: 1e-4,
        clip: 5.0,
        loss: LossKind::MaskedMae {
            null_value: p.spec.null_value,
        },
        patience: 0,
        ..TrainConfig::default()
    };
    train_and_evaluate(model.as_ref(), &p.spec, &p.windows, &cfg, ctx.batch_for(&p.spec))
        .unwrap_or_else(|e| panic!("baseline {name} training failed: {e}"))
}

/// Run the full AutoCTS pipeline: search, then architecture evaluation.
pub fn autocts_search_and_eval(
    cfg: &SearchConfig,
    ctx: &ExpContext,
    p: &Prepared,
) -> (SearchOutcome, EvalReport) {
    let cfg = SearchConfig {
        batch_size: ctx.batch_for(&p.spec),
        ..cfg.clone()
    };
    let auto = AutoCts::new(cfg.clone());
    let outcome = auto.search(&p.spec, &p.data.graph, &p.windows);
    let report = auto.evaluate(
        &outcome.genotype,
        &p.spec,
        &p.data.graph,
        &p.windows,
        ctx.eval_epochs,
    );
    (outcome, report)
}

/// AutoSTG as a restricted AutoCTS configuration (see DESIGN.md): only
/// {1D-Conv, DGCN} as parametric operators, micro-only search, stacked
/// homogeneous blocks.
pub fn autostg_config(ctx: &ExpContext) -> SearchConfig {
    SearchConfig {
        op_set: vec![OpKind::Zero, OpKind::Identity, OpKind::Conv1d, OpKind::Dgcn],
        macro_search: false,
        ..ctx.search_config()
    }
}

/// Fixed-width ASCII table renderer used by every experiment binary.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(&format!("\n== {title} ==\n"));
    let line = |cells: Vec<String>, widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths.iter())
            .map(|(c, w)| format!("{c:<w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    out.push_str(&line(headers.iter().map(|h| h.to_string()).collect(), &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    out.push('\n');
    for row in rows {
        out.push_str(&line(row.clone(), &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_from_env_uses_defaults() {
        let ctx = ExpContext::default();
        assert_eq!(ctx.nodes, 16);
        assert!(ctx.search_config().epochs == ctx.search_epochs);
    }

    #[test]
    fn prepare_scales_dataset() {
        let ctx = ExpContext::smoke();
        let p = prepare(&ctx, &DatasetSpec::metr_la());
        assert!(p.spec.n <= 10);
        assert!(!p.windows.train.is_empty());
        assert!(!p.windows.test.is_empty());
    }

    #[test]
    fn every_baseline_builds() {
        let ctx = ExpContext::smoke();
        let p = prepare(&ctx, &DatasetSpec::metr_la());
        for name in BASELINE_NAMES {
            let m = build_baseline(name, &ctx, &p);
            assert!(!m.parameters().is_empty(), "{name} has no params");
        }
    }

    #[test]
    fn autostg_config_is_restricted() {
        let cfg = autostg_config(&ExpContext::smoke());
        assert_eq!(cfg.op_set.len(), 4);
        assert!(!cfg.macro_search);
    }

    #[test]
    fn table_renderer_aligns() {
        let s = print_table(
            "T",
            &["a", "bbbb"],
            &[vec!["x".into(), "y".into()], vec!["long".into(), "z".into()]],
        );
        assert!(s.contains("== T =="));
        assert!(s.contains("long"));
    }
}
