//! Observability smoke run: a tiny two-epoch joint search with metrics
//! forced on, emitting the structured JSONL run log. Pipe the result
//! through the `report` binary (`cts-obs`) to get the human summary and
//! `BENCH_obs.json`.
//!
//! The log path follows the usual resolution: `$CTS_RUN_LOG` if set, else
//! `cts_run.jsonl` in the working directory. `scripts/bench.sh` runs this
//! with `CTS_RUN_LOG` pointed into the bench output directory.

use cts_bench::{prepare, ExpContext};
use cts_data::DatasetSpec;

fn main() {
    // Force metrics on regardless of CTS_METRICS so the smoke run always
    // produces a log; tracing stays env-controlled (per-step rows are
    // high-volume).
    cts_obs::set_metrics(Some(true));

    let ctx = ExpContext {
        search_epochs: 2,
        ..ExpContext::smoke()
    };
    let p = prepare(&ctx, &DatasetSpec::metr_la());
    let cfg = ctx.search_config();

    let (genotype, _model, stats) =
        match autocts::joint_search(&cfg, &p.spec, &p.data.graph, &p.windows) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("obs_smoke: joint_search failed: {e}");
                std::process::exit(1);
            }
        };
    cts_obs::runlog::flush();

    println!(
        "obs_smoke: searched {} epochs / {} steps in {:.2}s (final tau {:.3}, \
         val loss {:.4}, rollbacks {})",
        stats.epochs.len(),
        stats.steps,
        stats.secs,
        stats.final_tau,
        stats.final_val_loss,
        stats.rollbacks,
    );
    println!("obs_smoke: derived genotype with {} blocks", genotype.b());
    println!(
        "obs_smoke: run log at {}",
        cts_obs::runlog::resolved_path().display()
    );
}
