//! Observability smoke run: a tiny two-epoch joint search with metrics
//! forced on, emitting the structured JSONL run log — including one
//! `regime` row per adversarial data regime (clean baseline, sensor
//! dropout, missing spans, regime shift) evaluating the derived model's
//! robustness. Pipe the result through the `report` binary (`cts-obs`)
//! to get the human summary and `BENCH_obs.json`.
//!
//! The log path follows the usual resolution: `$CTS_RUN_LOG` if set, else
//! `cts_run.jsonl` in the working directory. `scripts/bench.sh` runs this
//! with `CTS_RUN_LOG` pointed into the bench output directory.

use cts_bench::{prepare, window, ExpContext};
use cts_data::{apply_regime, batches_from_windows, DatasetSpec, Regime};
use cts_obs::runlog::Value;

fn main() {
    // Force metrics on regardless of CTS_METRICS so the smoke run always
    // produces a log; tracing stays env-controlled (per-step rows are
    // high-volume).
    cts_obs::set_metrics(Some(true));

    let ctx = ExpContext {
        search_epochs: 2,
        ..ExpContext::smoke()
    };
    let p = prepare(&ctx, &DatasetSpec::metr_la());
    let cfg = ctx.search_config();

    let (genotype, model, stats) =
        match autocts::joint_search(&cfg, &p.spec, &p.data.graph, &p.windows) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("obs_smoke: joint_search failed: {e}");
                std::process::exit(1);
            }
        };

    // Robustness rows: evaluate the searched model under each adversarial
    // regime (ROADMAP 5(c)) on the same window grid and emit per-regime
    // masked metrics for the report's `regime.*` BENCH rows.
    for regime in Regime::standard_suite() {
        let corrupted = apply_regime(&p.data, &regime, 17);
        let w = window(&ctx, &corrupted);
        let batches = batches_from_windows(&w.test, cfg.batch_size);
        let (overall, _) = autocts::eval::evaluate_model(&model, &batches, p.spec.null_value);
        cts_obs::runlog::emit(
            "regime",
            &[
                ("name", Value::Str(regime.name())),
                ("mae", Value::F64(overall.mae as f64)),
                ("rmse", Value::F64(overall.rmse as f64)),
                ("mape", Value::F64(overall.mape as f64)),
            ],
        );
        println!(
            "obs_smoke: regime {:<14} mae {:.4} rmse {:.4} mape {:.4}",
            regime.name(),
            overall.mae,
            overall.rmse,
            overall.mape
        );
    }
    cts_obs::runlog::flush();

    println!(
        "obs_smoke: searched {} epochs / {} steps in {:.2}s (final tau {:.3}, \
         val loss {:.4}, rollbacks {})",
        stats.epochs.len(),
        stats.steps,
        stats.secs,
        stats.final_tau,
        stats.final_val_loss,
        stats.rollbacks,
    );
    println!("obs_smoke: derived genotype with {} blocks", genotype.b());
    println!(
        "obs_smoke: run log at {}",
        cts_obs::runlog::resolved_path().display()
    );
}
