//! Regenerates the paper experiment implemented in
//! `cts_bench::experiments::table08`. Scale via env vars (see ExpContext).

fn main() {
    let ctx = cts_bench::ExpContext::from_env();
    eprintln!("context: {ctx:?}");
    let report = cts_bench::experiments::table08::run(&ctx);
    println!("{report}");
}
