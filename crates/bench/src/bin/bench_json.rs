//! Machine-readable benchmark emitter: writes `BENCH_ops.json` and
//! `BENCH_search_step.json` at the repo root (or `$BENCH_OUT_DIR`).
//!
//! Unlike the criterion benches this binary installs a counting global
//! allocator, so every row carries allocations/step next to ns/iter —
//! the two axes the worker-pool + arena work optimises. Rows cover the
//! persistent-pool dispatcher against the legacy spawn-per-kernel
//! baseline (`Dispatch::Spawn`) at 1/2/4 workers, and the arena on/off.
//!
//! Every row also carries a `simd` column (`"avx2"` / `"sse2"` /
//! `"scalar"`); `BENCH_ops.json` additionally runs the per-kernel cases
//! once more with `cts_tensor::simd` forced to the scalar path so the
//! vector speedup is a recorded scalar-vs-simd row pair, and both files
//! open with a `host` header (available parallelism + detected SIMD).
//! Two regressions are *asserted* in-process, not just recorded:
//! `matmul_nt` must stay within 1.3× of `matmul` (the packed-B fix), and
//! on hosts where AVX2 is detected the vectorized matmul must beat the
//! forced-scalar path by ≥ 1.5×.

use std::alloc::{GlobalAlloc, Layout, System};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use cts_autograd::Tape;
use cts_bench::{prepare, ExpContext};
use cts_data::{batches_from_windows, DatasetSpec};
use cts_nn::{Adam, Forecaster, LossKind, Optimizer};
use cts_tensor::parallel::{set_dispatch, set_num_threads, Dispatch};
use cts_tensor::simd::{self, SimdLevel};
use cts_tensor::{arena, init, ops, Tensor};
use rand::{rngs::SmallRng, SeedableRng};

/// Pass-through system allocator that counts calls and bytes.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to the system allocator; the atomic counters
// only observe calls and never change layouts or pointers.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    // SAFETY: verbatim delegation to the system allocator.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn counters() -> (u64, u64) {
    (ALLOCS.load(Ordering::Relaxed), BYTES.load(Ordering::Relaxed))
}

struct Measure {
    ns_per_iter: u64,
    allocs_per_iter: u64,
    bytes_per_iter: u64,
}

/// Time `iters` calls of `f` after `warmup` discarded ones, reading the
/// allocation counters around the measured window.
fn measure(warmup: usize, iters: usize, mut f: impl FnMut()) -> Measure {
    for _ in 0..warmup {
        f();
    }
    let (a0, b0) = counters();
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    let dt = t0.elapsed();
    let (a1, b1) = counters();
    let n = iters.max(1) as u64;
    Measure {
        ns_per_iter: (dt.as_nanos() as u64) / n,
        allocs_per_iter: (a1 - a0) / n,
        bytes_per_iter: (b1 - b0) / n,
    }
}

fn dispatch_name(d: Dispatch) -> &'static str {
    match d {
        Dispatch::Pool => "pool",
        Dispatch::Spawn => "spawn",
    }
}

fn row_json(
    op: &str,
    shape: &str,
    threads: usize,
    dispatch: &str,
    arena_on: bool,
    m: &Measure,
) -> String {
    format!(
        "    {{\"op\": \"{op}\", \"shape\": \"{shape}\", \"threads\": {threads}, \
         \"dispatch\": \"{dispatch}\", \"arena\": {arena_on}, \"simd\": \"{}\", \
         \"ns_per_iter\": {}, \"allocs_per_iter\": {}, \"bytes_per_iter\": {}}}",
        simd::level_name(),
        m.ns_per_iter,
        m.allocs_per_iter,
        m.bytes_per_iter
    )
}

/// The `host` header object shared by every `BENCH_*.json` this binary
/// writes: how many hardware threads the box offers and which SIMD level
/// `cts_tensor::simd` detected, so numbers from different machines are
/// never compared blind.
fn host_json() -> String {
    let par = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    format!(
        "  \"host\": {{\"available_parallelism\": {par}, \"simd_detected\": \"{}\", \
         \"simd_active\": \"{}\"}}",
        simd::detected_name(),
        simd::level_name()
    )
}

/// Per-kernel rows: the projection/attention shapes the supernet is built
/// from, at every (threads, dispatch) combination, plus a forced-scalar
/// pass at (threads=1, pool) so each kernel has a scalar-vs-simd row pair.
///
/// Asserts (rather than merely records) the two perf contracts of the
/// SIMD work: `matmul_nt` within 1.3× of `matmul`, and vectorized matmul
/// ≥ 1.5× over forced-scalar when AVX2 is available.
fn bench_ops() -> (Vec<String>, String) {
    let mut rng = SmallRng::seed_from_u64(0);
    let a = init::uniform(&mut rng, [8, 16, 48, 64], -1.0, 1.0);
    let w = init::uniform(&mut rng, [64, 64], -1.0, 1.0);
    let b_same = init::uniform(&mut rng, [8, 16, 48, 64], -1.0, 1.0);
    let scores = init::uniform(&mut rng, [8, 16, 48, 48], -1.0, 1.0);

    type Case<'c> = (&'c str, &'c str, Box<dyn Fn() -> Tensor + 'c>);
    let cases: Vec<Case> = vec![
        ("matmul", "[8,16,48,64]x[64,64]", Box::new(|| ops::matmul(&a, &w))),
        (
            "matmul.nt",
            "[8,16,48,64]x[64,64]T",
            Box::new(|| ops::matmul_nt(&a, &w)),
        ),
        (
            "matmul.tn",
            "[8,16,48,64]Tx[8,16,48,48]",
            Box::new(|| ops::matmul_tn(&a, &scores)),
        ),
        (
            "softmax.last",
            "[8,16,48,48]",
            Box::new(|| ops::softmax_last(&scores)),
        ),
        (
            "elementwise.add",
            "[8,16,48,64]+[8,16,48,64]",
            Box::new(|| ops::add(&a, &b_same)),
        ),
        (
            "elementwise.reduce_to_shape",
            "[8,16,48,64]->[48,64]",
            Box::new(|| ops::reduce_to_shape(&a, &[48, 64])),
        ),
    ];

    let mut rows = Vec::new();
    // ns/iter at (threads=1, pool), keyed by (op, simd level name) — the
    // config the speedup assertions below read from.
    let mut t1_pool: HashMap<(String, &'static str), u64> = HashMap::new();
    for &threads in &[1usize, 2, 4] {
        for &d in &[Dispatch::Pool, Dispatch::Spawn] {
            set_num_threads(threads);
            set_dispatch(Some(d));
            for (op, shape, f) in &cases {
                let m = measure(5, 20, || {
                    std::hint::black_box(f());
                });
                if threads == 1 && d == Dispatch::Pool {
                    t1_pool.insert((op.to_string(), simd::level_name()), m.ns_per_iter);
                }
                rows.push(row_json(op, shape, threads, dispatch_name(d), arena::enabled(), &m));
            }
        }
    }

    // Forced-scalar reference pass. Safe to flip mid-process: every kernel
    // is bit-identical across levels, so only timing changes.
    let active = simd::level_name();
    if simd::active() {
        simd::set_level(Some(SimdLevel::Scalar));
        set_num_threads(1);
        set_dispatch(Some(Dispatch::Pool));
        for (op, shape, f) in &cases {
            let m = measure(5, 20, || {
                std::hint::black_box(f());
            });
            t1_pool.insert((op.to_string(), simd::level_name()), m.ns_per_iter);
            rows.push(row_json(op, shape, 1, dispatch_name(Dispatch::Pool), arena::enabled(), &m));
        }
        simd::set_level(None);
    }
    set_dispatch(None);
    set_num_threads(0);

    let ns = |op: &str, lvl: &'static str| -> f64 {
        t1_pool.get(&(op.to_string(), lvl)).copied().unwrap_or(0).max(1) as f64
    };
    let speedup = |op: &str| ns(op, "scalar") / ns(op, active);
    let nt_ratio = ns("matmul.nt", active) / ns("matmul", active);
    let (mm, ew, sm, rd) = (
        speedup("matmul"),
        speedup("elementwise.add"),
        speedup("softmax.last"),
        speedup("elementwise.reduce_to_shape"),
    );
    let summary = format!(
        "  \"summary\": {{\"simd_active\": \"{active}\", \
         \"ratio_matmul_nt_vs_matmul_t1_pool\": {nt_ratio:.3}, \
         \"speedup_simd_vs_scalar_t1_pool\": {{\"matmul\": {mm:.3}, \
         \"elementwise.add\": {ew:.3}, \"softmax.last\": {sm:.3}, \
         \"elementwise.reduce_to_shape\": {rd:.3}}}}}"
    );

    // The packed-B fix for matmul_nt: the pre-fix ratio was ~2.1×; hold the
    // line at 1.3× so the regression cannot silently return.
    assert!(
        nt_ratio <= 1.3,
        "matmul_nt regressed: {nt_ratio:.3}x matmul at threads=1/pool (budget 1.3x)"
    );
    if simd::detected() == SimdLevel::Avx2 && simd::active() {
        assert!(
            mm >= 1.5,
            "vectorized matmul only {mm:.3}x over forced-scalar on an AVX2 host (need 1.5x)"
        );
    }
    (rows, summary)
}

/// One bi-level search step (Θ update + w update) on the default-scale
/// supernet — the unit cost behind the paper's search times.
///
/// Uses [`ExpContext::from_env`] (the documented `NODES`/`BATCH`/`D_MODEL`
/// knobs), not the smoke context: at smoke scale nearly every kernel sits
/// below `PAR_THRESHOLD` and runs serial under either dispatcher, so the
/// step would measure compute, not the dispatch overhead this file tracks.
fn bench_search_step() -> (Vec<String>, String) {
    let ctx = ExpContext::from_env();
    let p = prepare(&ctx, &DatasetSpec::metr_la());
    let cfg = ctx.search_config();
    let mut rng = SmallRng::seed_from_u64(0);
    let model =
        autocts::SupernetModel::new(&mut rng, &cfg, &p.spec, &p.data.graph, &p.windows.scaler);
    let batches = batches_from_windows(&p.windows.train, ctx.batch);
    let (x, y) = batches[0].clone();
    let mut arch_opt = Adam::for_architecture(model.arch_parameters(), cfg.arch_lr, cfg.arch_wd);
    let mut weight_opt = Adam::new(model.weight_parameters(), cfg.weight_lr, cfg.weight_wd);
    let loss_kind = LossKind::MaskedMae { null_value: Some(0.0) };

    let mut step = || {
        // Θ step
        let tape = Tape::new();
        let pred = model.forward(&tape, &tape.constant(x.clone()));
        let loss = loss_kind.compute(&tape, &pred, &y);
        tape.backward(&loss);
        for pm in weight_opt.params() {
            pm.zero_grad();
        }
        arch_opt.step();
        // w step
        let tape = Tape::new();
        let pred = model.forward(&tape, &tape.constant(x.clone()));
        let loss = loss_kind.compute(&tape, &pred, &y);
        tape.backward(&loss);
        for pm in arch_opt.params() {
            pm.zero_grad();
        }
        weight_opt.step();
    };

    // (threads, dispatch, arena)
    let configs = [
        (1usize, Dispatch::Pool, true),
        (2, Dispatch::Pool, true),
        (4, Dispatch::Pool, true),
        (1, Dispatch::Spawn, true),
        (4, Dispatch::Spawn, true),
        (4, Dispatch::Pool, false),
    ];
    let mut rows = Vec::new();
    let mut pool_t4 = None;
    let mut spawn_t4 = None;
    let mut arena_on_t4 = None;
    let mut arena_off_t4 = None;
    for &(threads, d, arena_on) in &configs {
        set_num_threads(threads);
        set_dispatch(Some(d));
        arena::set_enabled(Some(arena_on));
        if !arena_on {
            arena::clear(); // free lists must not serve this config
        }
        let m = measure(2, 5, &mut step);
        rows.push(row_json(
            "search_step.bilevel",
            "metr-la default-scale supernet",
            threads,
            dispatch_name(d),
            arena_on,
            &m,
        ));
        match (threads, d, arena_on) {
            (4, Dispatch::Pool, true) => {
                pool_t4 = Some(m.ns_per_iter);
                arena_on_t4 = Some((m.allocs_per_iter, m.bytes_per_iter));
            }
            (4, Dispatch::Spawn, true) => spawn_t4 = Some(m.ns_per_iter),
            (4, Dispatch::Pool, false) => {
                arena_off_t4 = Some((m.allocs_per_iter, m.bytes_per_iter));
            }
            _ => {}
        }
    }
    arena::set_enabled(None);
    set_dispatch(None);
    set_num_threads(0);

    let ratio = |num: u64, den: u64| num as f64 / den.max(1) as f64;
    let (pool, spawn) = (pool_t4.unwrap_or(1), spawn_t4.unwrap_or(1));
    let (on_a, on_b) = arena_on_t4.unwrap_or((1, 1));
    let (off_a, off_b) = arena_off_t4.unwrap_or((1, 1));
    let summary = format!(
        "  \"summary\": {{\"speedup_pool_vs_spawn_threads4\": {:.3}, \
         \"alloc_count_reduction_arena\": {:.3}, \"alloc_bytes_reduction_arena\": {:.3}}}",
        ratio(spawn, pool),
        ratio(off_a, on_a),
        ratio(off_b, on_b)
    );
    (rows, summary)
}

fn write_json(path: &std::path::Path, rows: &[String], summary: Option<&str>) {
    let mut body = String::from("{\n");
    body.push_str(&host_json());
    body.push_str(",\n  \"rows\": [\n");
    body.push_str(&rows.join(",\n"));
    body.push_str("\n  ]");
    if let Some(s) = summary {
        body.push_str(",\n");
        body.push_str(s);
    }
    body.push_str("\n}\n");
    if let Err(e) = std::fs::write(path, body) {
        eprintln!("bench_json: cannot write {}: {e}", path.display());
        std::process::exit(1);
    }
    println!("wrote {}", path.display());
}

fn main() {
    let out_dir = std::env::var("BENCH_OUT_DIR").unwrap_or_else(|_| ".".into());
    let out = std::path::Path::new(&out_dir);

    let (ops_rows, ops_summary) = bench_ops();
    write_json(&out.join("BENCH_ops.json"), &ops_rows, Some(&ops_summary));
    println!("{ops_summary}");

    let (step_rows, summary) = bench_search_step();
    write_json(&out.join("BENCH_search_step.json"), &step_rows, Some(&summary));
    println!("{summary}");
}
