//! Runs every table/figure experiment in sequence and echoes the combined
//! report (tee it into a file to refresh EXPERIMENTS.md data).

type ExpFn = fn(&cts_bench::ExpContext) -> String;

fn main() {
    let ctx = cts_bench::ExpContext::from_env();
    eprintln!("context: {ctx:?}");
    let experiments: Vec<(&str, ExpFn)> = vec![
        ("Table 38 / Table 1 (taxonomy)", cts_bench::experiments::table38::run),
        ("Table 3 (variant pre-study)", cts_bench::experiments::table03::run),
        ("Figure 6 (T-operator families)", cts_bench::experiments::fig06::run),
        ("Tables 5-6 (multi-step accuracy)", cts_bench::experiments::table05_06::run),
        ("Table 7 (search cost)", cts_bench::experiments::table07::run),
        ("Table 8 (single-step accuracy)", cts_bench::experiments::table08::run),
        ("Tables 9-16 (ablations)", cts_bench::experiments::table09_16::run),
        ("Tables 17-26 (M/B sensitivity)", cts_bench::experiments::table17_26::run),
        ("Tables 27-34 (runtime & parameters)", cts_bench::experiments::table27_34::run),
        ("Table 35 (transferability)", cts_bench::experiments::table35::run),
        ("Tables 36-37 (edges per node)", cts_bench::experiments::table36_37::run),
        ("Figure 8 (case study)", cts_bench::experiments::fig08::run),
    ];
    let total = std::time::Instant::now();
    for (name, run) in experiments {
        eprintln!(">>> running {name} ...");
        let started = std::time::Instant::now();
        let report = run(&ctx);
        println!("{report}");
        eprintln!("<<< {name} done in {:.1}s", started.elapsed().as_secs_f64());
    }
    eprintln!("total: {:.1}s", total.elapsed().as_secs_f64());
}
