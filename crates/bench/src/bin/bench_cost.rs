//! Predicted-vs-measured audit of the static cost model: writes
//! `BENCH_cost.json` at the repo root (or `$BENCH_OUT_DIR`).
//!
//! One row per operator family in the full Table 1 set. Each family is
//! embedded in a canonical two-block architecture dominated by that
//! operator (non-parametric families ride with a parametric anchor so
//! the analyzer accepts the genotype), compiled to a tape-free
//! `ExecPlan`, and then priced twice:
//!
//! - **statically** by `cts_verify::analyze_cost`, which never executes
//!   a kernel, and
//! - **dynamically** by running the plan under the `cts_tensor::meter`
//!   instrumentation and a wall-clock timer.
//!
//! FLOPs and bytes must match bit for bit — the model claims exactness,
//! not approximation — so those columns are booleans. Latency is a
//! 3-coefficient linear model; the JSON carries two calibrations: the
//! in-process probe fit (`LatencyModel::calibrate`, what the search
//! pre-flight uses) and a weighted least-squares refit against the
//! measured family rows. `--gate` holds every refit ratio inside a
//! generous 3x band — i.e. it tests that dense-flops/light-flops/calls
//! explain real forward latency at all — and fails on any exactness
//! miss. `--gate` also compares the compiled-in `LatencyModel::default()`
//! flop coefficients against the refit: if a kernel-speed change (e.g.
//! the SIMD microkernels) moves real throughput more than 3x away from
//! the shipped defaults, the gate fails until the defaults are
//! re-calibrated (dispatch overhead is host-scheduling noise and is
//! excluded). Probe-calibration drift beyond 10x is `verify_space`'s
//! alarm, not this gate's.

use autocts::preflight::arch_spec;
use autocts::{BlockGenotype, DerivedModel, Genotype, SearchConfig};
use cts_data::{batches_from_windows, build_windows, generate, DatasetSpec};
use cts_ops::{full_set, OpKind};
use cts_tensor::{arena, meter};
use cts_verify::LatencyModel;
use rand::{rngs::SmallRng, SeedableRng};
use std::time::Instant;

/// The canonical M = 3 derived-block architecture dominated by `op`,
/// falling back to an anchor operator on the middle slot when the pure
/// assignment is rejected (all-`zero` feeds nothing forward, all-
/// `identity` has no trainable parameter).
fn family_genotype(
    op: OpKind,
    cfg: &SearchConfig,
    spec: &DatasetSpec,
    data: &cts_data::CtsData,
) -> Option<Genotype> {
    let mut slates = vec![vec![(0, 1, op), (1, 2, op), (0, 2, op)]];
    for anchor in full_set() {
        slates.push(vec![(0, 1, anchor), (1, 2, anchor), (0, 2, op)]);
    }
    for edges in slates {
        let block = BlockGenotype { m: 3, edges };
        let genotype = Genotype {
            blocks: vec![block.clone(); cfg.b],
            backbone: vec![0, 1],
        };
        if cts_verify::validate_genotype(&arch_spec(cfg, &genotype, spec, &data.graph)).is_ok() {
            return Some(genotype);
        }
    }
    None
}

struct Row {
    family: &'static str,
    dense_flops: f64,
    light_flops: f64,
    calls: f64,
    predicted_ns: f64,
    measured_ns: f64,
    peak_bytes: u64,
    genotype: String,
    counts: String,
    exact: bool,
}

/// Weighted least-squares refit of the 3-coefficient latency model
/// against the measured rows: minimises the squared **relative** error
/// (each row scaled by its measured time), solved via the 3x3 normal
/// equations, coefficients clamped positive.
fn refit(rows: &[Row]) -> LatencyModel {
    let mut ata = [[0.0f64; 3]; 3];
    let mut atb = [0.0f64; 3];
    for r in rows {
        let w = 1.0 / r.measured_ns.max(1.0);
        let a = [r.dense_flops * w, r.light_flops * w, r.calls * w];
        for i in 0..3 {
            for j in 0..3 {
                ata[i][j] += a[i] * a[j];
            }
            atb[i] += a[i]; // target is measured_ns * w = 1
        }
    }
    let det3 = |m: &[[f64; 3]; 3]| -> f64 {
        m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
            - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
            + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0])
    };
    let d = det3(&ata);
    let solve = |col: usize| -> f64 {
        let mut m = ata;
        for (row, &b) in m.iter_mut().zip(&atb) {
            row[col] = b;
        }
        det3(&m) / d
    };
    if d.abs() < 1e-30 {
        return LatencyModel::default();
    }
    LatencyModel {
        dense_ns_per_flop: solve(0).clamp(0.001, 1e4),
        light_ns_per_flop: solve(1).clamp(0.001, 1e4),
        dispatch_ns: solve(2).clamp(0.1, 1e7),
    }
}

fn main() {
    let gate = std::env::args().any(|a| a == "--gate");
    let out_dir = std::env::var("BENCH_OUT_DIR").unwrap_or_else(|_| ".".into());

    let spec = DatasetSpec::metr_la().scaled(0.04, 0.015);
    let data = generate(&spec, 11);
    let windows = build_windows(&data, 6, 24);
    let cfg = SearchConfig {
        m: 3,
        b: 2,
        d_model: 16,
        batch_size: 4,
        ..Default::default()
    };
    let batches = batches_from_windows(&windows.train, cfg.batch_size);
    let (x, _) = &batches[0];
    let batch = x.shape()[0];

    let latency = LatencyModel::calibrate();
    println!(
        "bench_cost: calibrated {{dense {:.3} ns/flop, light {:.3} ns/flop, dispatch {:.0} ns/call}}",
        latency.dense_ns_per_flop, latency.light_ns_per_flop, latency.dispatch_ns
    );

    let mut rows: Vec<Row> = Vec::new();
    for op in full_set() {
        let Some(genotype) = family_genotype(op, &cfg, &spec, &data) else {
            eprintln!("bench_cost: no accepted architecture for family {}", op.label());
            std::process::exit(1);
        };
        let mut rng = SmallRng::seed_from_u64(17);
        let model = DerivedModel::new(&mut rng, &cfg, &genotype, &spec, &data.graph, &windows.scaler);
        // invariant: family_genotype only returns analyzer-accepted genotypes
        let plan = model.compiled_plan().expect("accepted genotypes compile");
        let static_cost = plan.static_cost(batch);
        let arch = arch_spec(&cfg, &genotype, &spec, &data.graph);
        // invariant: the same accepted spec priced fine via the plan walk above
        let report = cts_verify::analyze_cost(&arch, batch).expect("accepted genotypes price");
        assert_eq!(report.total, static_cost, "analyzer disagrees with plan walk");

        // Exactness: one instrumented forward against the static counts.
        arena::clear();
        meter::reset();
        meter::set_enabled(true);
        let out = plan.try_run(x);
        meter::set_enabled(false);
        let m = meter::snapshot();
        assert!(out.is_ok(), "family {} failed to run: {:?}", op.label(), out.err());
        let exact = static_cost.flops == m.flops
            && static_cost.bytes_read == m.bytes_read()
            && static_cost.bytes_written == m.bytes_written()
            && static_cost.kernel_calls == m.kernel_calls;

        // Latency: warm best-of-5 forward against the fitted model.
        let mut best_ns = f64::INFINITY;
        for _ in 0..5 {
            let t0 = Instant::now();
            // invariant: the instrumented cold run above already succeeded
            let y = plan.try_run(x).expect("warm forward");
            best_ns = best_ns.min(t0.elapsed().as_nanos() as f64);
            drop(y);
        }
        rows.push(Row {
            family: op.label(),
            dense_flops: report.total.dense_flops as f64,
            light_flops: report.total.flops.saturating_sub(report.total.dense_flops) as f64,
            calls: report.total.kernel_calls as f64,
            predicted_ns: latency.predict_ns(&report.total),
            measured_ns: best_ns,
            peak_bytes: report.peak_bytes,
            genotype: genotype.to_text(),
            counts: format!(
                "\"flops\": {}, \"flops_measured\": {}, \"flops_exact\": {}, \
                 \"bytes_read\": {}, \"bytes_read_measured\": {}, \"bytes_read_exact\": {}, \
                 \"bytes_written\": {}, \"bytes_written_measured\": {}, \"bytes_written_exact\": {}, \
                 \"kernel_calls\": {}, \"kernel_calls_measured\": {}",
                static_cost.flops,
                m.flops,
                static_cost.flops == m.flops,
                static_cost.bytes_read,
                m.bytes_read(),
                static_cost.bytes_read == m.bytes_read(),
                static_cost.bytes_written,
                m.bytes_written(),
                static_cost.bytes_written == m.bytes_written(),
                static_cost.kernel_calls,
                m.kernel_calls,
            ),
            exact,
        });
    }

    let fitted = refit(&rows);
    println!(
        "bench_cost: refit from rows {{dense {:.3} ns/flop, light {:.3} ns/flop, dispatch {:.0} ns/call}}",
        fitted.dense_ns_per_flop, fitted.light_ns_per_flop, fitted.dispatch_ns
    );

    let fit_ns = |r: &Row| {
        r.dense_flops * fitted.dense_ns_per_flop
            + r.light_flops * fitted.light_ns_per_flop
            + r.calls * fitted.dispatch_ns
    };
    for r in &rows {
        println!(
            "  {:<14} exact {:<5}  probe {:>9.1} us  fit {:>9.1} us  meas {:>9.1} us  fit ratio {:>5.2}",
            r.family,
            r.exact,
            r.predicted_ns / 1e3,
            fit_ns(r) / 1e3,
            r.measured_ns / 1e3,
            fit_ns(r) / r.measured_ns.max(1.0),
        );
    }

    let all_exact = rows.iter().all(|r| r.exact);
    let worst_ratio = rows
        .iter()
        .map(|r| {
            let q = fit_ns(r) / r.measured_ns.max(1.0);
            q.max(1.0 / q.max(1e-12))
        })
        .fold(1.0f64, f64::max);

    let json_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"family\": \"{}\", \"genotype\": \"{}\", \"batch\": {}, {}, \
                 \"peak_bytes\": {}, \"probe_predicted_ns\": {:.0}, \"fit_predicted_ns\": {:.0}, \
                 \"measured_ns\": {:.0}, \"latency_ratio\": {:.4}}}",
                r.family,
                r.genotype,
                batch,
                r.counts,
                r.peak_bytes,
                r.predicted_ns,
                fit_ns(r),
                r.measured_ns,
                fit_ns(r) / r.measured_ns.max(1.0),
            )
        })
        .collect();
    let par = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut body = format!(
        "{{\n  \"host\": {{\"available_parallelism\": {par}, \"simd_detected\": \"{}\", \
         \"simd_active\": \"{}\"}},\n  \"rows\": [\n",
        cts_tensor::simd::detected_name(),
        cts_tensor::simd::level_name()
    );
    body.push_str(&json_rows.join(",\n"));
    body.push_str(&format!(
        "\n  ],\n  \"calibration_probe\": {{\"dense_ns_per_flop\": {:.4}, \
         \"light_ns_per_flop\": {:.4}, \"dispatch_ns\": {:.1}}},\n  \
         \"calibration_fit\": {{\"dense_ns_per_flop\": {:.4}, \
         \"light_ns_per_flop\": {:.4}, \"dispatch_ns\": {:.1}}},\n  \
         \"summary\": {{\"families\": {}, \"all_exact\": {}, \"worst_fit_latency_ratio\": {:.4}}}\n}}\n",
        latency.dense_ns_per_flop,
        latency.light_ns_per_flop,
        latency.dispatch_ns,
        fitted.dense_ns_per_flop,
        fitted.light_ns_per_flop,
        fitted.dispatch_ns,
        rows.len(),
        all_exact,
        worst_ratio,
    ));
    let path = std::path::Path::new(&out_dir).join("BENCH_cost.json");
    if let Err(e) = std::fs::write(&path, body) {
        eprintln!("bench_cost: cannot write {}: {e}", path.display());
        std::process::exit(1);
    }
    println!("wrote {}", path.display());
    println!(
        "summary: {} families, all_exact {}, worst fitted latency ratio {:.2}",
        rows.len(),
        all_exact,
        worst_ratio
    );

    if gate {
        let mut bad = false;
        for r in rows.iter().filter(|r| !r.exact) {
            eprintln!("GATE: family {} flops/bytes not exact", r.family);
            bad = true;
        }
        if worst_ratio > 3.0 {
            eprintln!("GATE: worst fitted latency ratio {worst_ratio:.2} outside the 3x band");
            bad = true;
        }
        // Stale-default detection: the shipped coefficients back every
        // pre-calibration budget pre-flight, so a kernel-speed change that
        // moves real flop throughput 3x away from them must refresh
        // `LatencyModel::default()` (dispatch excluded — it tracks the host
        // scheduler, not kernel code).
        let shipped = LatencyModel::default();
        let band = |fit: f64, def: f64, name: &str| -> bool {
            let q = fit / def.max(1e-12);
            let q = q.max(1.0 / q.max(1e-12));
            if q > 3.0 {
                eprintln!(
                    "GATE: {name} refit {fit:.4} ns/flop is {q:.2}x away from the shipped \
                     default {def:.4} — re-calibrate LatencyModel::default()"
                );
            }
            q > 3.0
        };
        bad |= band(fitted.dense_ns_per_flop, shipped.dense_ns_per_flop, "dense_ns_per_flop");
        bad |= band(fitted.light_ns_per_flop, shipped.light_ns_per_flop, "light_ns_per_flop");
        if bad {
            std::process::exit(1);
        }
        println!(
            "gate: flops/bytes exact on every family, fitted latency inside the 3x band, \
             shipped defaults within 3x of refit"
        );
    }
}
