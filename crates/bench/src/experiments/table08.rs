//! Table 8: single-step forecasting accuracy (Solar-Energy, Electricity;
//! horizons 3 and 24; RRSE ↓ and CORR ↑).
//!
//! Expected shape: {MTGNN, AutoCTS} > {LSTNet, TPA-LSTM} because the
//! former model spatial correlations; AutoCTS edges out MTGNN slightly.

use crate::experiments::f4;
use crate::{autocts_search_and_eval, prepare, print_table, run_baseline, ExpContext};
use cts_data::DatasetSpec;

const SINGLESTEP_BASELINES: [&str; 3] = ["LSTNet", "TPA-LSTM", "MTGNN"];

/// Run the single-step comparison.
pub fn run(ctx: &ExpContext) -> String {
    let mut rows: Vec<Vec<String>> = Vec::new();
    for model in SINGLESTEP_BASELINES.iter().copied().chain(["AutoCTS"]) {
        let mut rrse_row = vec![model.to_string(), "RRSE".to_string()];
        let mut corr_row = vec![String::new(), "CORR".to_string()];
        for base in ["Solar-Energy", "Electricity"] {
            for horizon in [3usize, 24] {
                let spec = match base {
                    "Solar-Energy" => DatasetSpec::solar_energy(horizon),
                    _ => DatasetSpec::electricity(horizon),
                };
                let p = prepare(ctx, &spec);
                let report = if model == "AutoCTS" {
                    autocts_search_and_eval(&ctx.search_config(), ctx, &p).1
                } else {
                    run_baseline(model, ctx, &p)
                };
                rrse_row.push(f4(report.overall.rrse));
                corr_row.push(f4(report.overall.corr));
            }
        }
        rows.push(rrse_row);
        rows.push(corr_row);
    }
    print_table(
        "Table 8: Single-step Forecasting (RRSE down / CORR up)",
        &[
            "Model", "Metric", "Solar@3", "Solar@24", "Elec@3", "Elec@24",
        ],
        &rows,
    )
}
