//! Tables 17–26: sensitivity to the micro-DAG size `M ∈ {3,5,7}` and the
//! backbone size `B ∈ {2,4,6}` on every dataset.
//!
//! Expected shape: the defaults (M=5, B=4) are best or near-best; smaller
//! values underfit slightly, larger values overfit slightly on the
//! limited training data.

use crate::experiments::{f2, f4, pct, sweep_specs};
use crate::{autocts_search_and_eval, prepare, print_table, ExpContext, Prepared};
use cts_data::Task;

fn run_setting(ctx: &ExpContext, p: &Prepared, m: usize, b: usize) -> Vec<String> {
    let cfg = autocts::SearchConfig {
        m,
        b,
        ..ctx.search_config()
    };
    let (_, report) = autocts_search_and_eval(&cfg, ctx, p);
    match p.spec.task {
        Task::MultiStep => vec![
            f2(report.overall.mae),
            f2(report.overall.rmse),
            pct(report.overall.mape),
        ],
        Task::SingleStep { .. } => vec![f4(report.overall.rrse), f4(report.overall.corr), String::new()],
    }
}

/// Run both sweeps for every dataset.
pub fn run(ctx: &ExpContext) -> String {
    let mut out = String::new();
    let specs = sweep_specs(ctx);
    for spec in &specs {
        let p = prepare(ctx, spec);
        let mut rows = Vec::new();
        for m in [3usize, 5, 7] {
            let mut row = vec![format!("M={m} (B=4)")];
            row.extend(run_setting(ctx, &p, m, 4));
            rows.push(row);
        }
        for b in [2usize, 4, 6] {
            let mut row = vec![format!("B={b} (M=5)")];
            row.extend(run_setting(ctx, &p, 5, b));
            rows.push(row);
        }
        let headers = match p.spec.task {
            Task::MultiStep => vec!["Setting", "MAE", "RMSE", "MAPE"],
            Task::SingleStep { .. } => vec!["Setting", "RRSE", "CORR", ""],
        };
        out.push_str(&print_table(
            &format!("Tables 17-26: Impact of M and B, {} (synthetic)", spec.name),
            &headers,
            &rows,
        ));
    }
    out
}
