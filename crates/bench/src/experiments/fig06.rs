//! Figure 6: comparison of the T-operator families (CNN / RNN / Attention)
//! on the figure's two axes — ability to model long-term dependencies
//! (test MAE on a long-history task) and efficiency (training seconds per
//! epoch).
//!
//! Expected shape: Attention best on long-term accuracy, CNN fastest,
//! RNN dominated on both axes (which is why the compact set drops it).

use crate::experiments::f2;
use crate::{prepare, print_table, train_single_op_model, ExpContext};
use cts_data::DatasetSpec;
use cts_ops::OpKind;

/// Run the family comparison on a long-input single-step task.
pub fn run(ctx: &ExpContext) -> String {
    // Electricity-like data with 168-step history stresses long-term
    // temporal dependencies.
    let spec = DatasetSpec::electricity(24);
    let p = prepare(ctx, &spec);
    let families = [
        ("CNN (GDCC)", OpKind::Gdcc),
        ("RNN (GRU)", OpKind::Gru),
        ("Attention (Informer)", OpKind::InformerT),
    ];
    let mut rows = Vec::new();
    for (label, kind) in families {
        let report = train_single_op_model(kind, ctx, &p);
        rows.push(vec![
            label.to_string(),
            f2(report.overall.rrse),
            format!("{:.2}", report.train_secs_per_epoch),
        ]);
    }
    print_table(
        "Figure 6: T-operator families — long-term accuracy vs efficiency",
        &["Family", "RRSE (long-term, lower=better)", "Train s/epoch (lower=faster)"],
        &rows,
    )
}
