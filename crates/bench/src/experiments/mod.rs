//! One module per table/figure of the paper's evaluation section.
//!
//! Each `run(ctx)` executes the experiment at the context's scale and
//! returns the formatted report text (also printed by the corresponding
//! binary). `EXPERIMENTS.md` records paper-vs-measured numbers.

pub mod fig06;
pub mod fig08;
pub mod table03;
pub mod table05_06;
pub mod table07;
pub mod table08;
pub mod table09_16;
pub mod table17_26;
pub mod table27_34;
pub mod table35;
pub mod table36_37;
pub mod table38;

use cts_data::DatasetSpec;

/// The six multi-step datasets of Tables 5–6.
pub fn multistep_specs() -> Vec<DatasetSpec> {
    DatasetSpec::all_multistep()
}

/// All eight datasets, interleaved by task type so small `DATASET_LIMIT`
/// sweeps still cover both multi-step and single-step behaviour; truncated
/// to the context's `dataset_limit` when non-zero.
pub fn sweep_specs(ctx: &crate::ExpContext) -> Vec<DatasetSpec> {
    let all = vec![
        DatasetSpec::metr_la(),
        DatasetSpec::pems03(),
        DatasetSpec::electricity(3),
        DatasetSpec::pems_bay(),
        DatasetSpec::pems04(),
        DatasetSpec::pems08(),
        DatasetSpec::pems07(),
        DatasetSpec::solar_energy(3),
    ];
    if ctx.dataset_limit == 0 {
        all
    } else {
        all.into_iter().take(ctx.dataset_limit).collect()
    }
}

/// The two single-step datasets of Table 8 at a given horizon.
pub fn singlestep_specs(horizon: usize) -> Vec<DatasetSpec> {
    vec![
        DatasetSpec::solar_energy(horizon),
        DatasetSpec::electricity(horizon),
    ]
}

/// Format a fraction as a percentage string.
pub(crate) fn pct(x: f32) -> String {
    format!("{:.2}%", x * 100.0)
}

/// Format a float to 2 decimals.
pub(crate) fn f2(x: f32) -> String {
    format!("{x:.2}")
}

/// Format a float to 4 decimals (RRSE/CORR columns).
pub(crate) fn f4(x: f32) -> String {
    format!("{x:.4}")
}
