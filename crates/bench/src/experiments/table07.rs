//! Table 7: architecture-search cost (time and memory) per dataset.
//!
//! Wall-clock seconds substitute for the paper's GPU hours; memory is the
//! analytic estimate of DESIGN.md (parameters + optimiser state +
//! forward/backward activations). What must reproduce: larger/longer
//! datasets cost more, and everything fits in a single machine's memory.

use crate::experiments::sweep_specs;
use crate::{prepare, print_table, ExpContext};
use autocts::joint_search;

/// Run the search-cost accounting.
pub fn run(ctx: &ExpContext) -> String {
    let specs = sweep_specs(ctx);
    let mut rows = Vec::new();
    for spec in &specs {
        let p = prepare(ctx, spec);
        let (_, _, stats) = joint_search(&ctx.search_config(), &p.spec, &p.data.graph, &p.windows)
            .unwrap_or_else(|e| panic!("search failed on {}: {e}", spec.name));
        rows.push(vec![
            spec.name.clone(),
            format!("{:.1}", stats.secs),
            format!("{:.1}", stats.memory_mb),
            stats.steps.to_string(),
        ]);
    }
    print_table(
        "Table 7: Search time (CPU seconds) and memory (MB)",
        &["Dataset", "Search Time (s)", "Memory (MB)", "Steps"],
        &rows,
    )
}
