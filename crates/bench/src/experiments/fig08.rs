//! Figure 8: case study — the architecture AutoCTS discovers on
//! PEMS03-like data, printed as per-block DAGs plus the backbone topology
//! and the operator histogram (the paper reports 5 GDCC, 2 INF-T, 5 INF-S,
//! 10 DGCN across four heterogeneous blocks).

use crate::{prepare, ExpContext};
use autocts::AutoCts;
use cts_data::DatasetSpec;

/// Search on PEMS03-like data and render the discovered architecture.
pub fn run(ctx: &ExpContext) -> String {
    let p = prepare(ctx, &DatasetSpec::pems03());
    let auto = AutoCts::new(ctx.search_config());
    let outcome = auto.search(&p.spec, &p.data.graph, &p.windows);
    let mut out = String::new();
    out.push_str("\n== Figure 8: Searched Forecasting Model on PEMS03 (synthetic) ==\n");
    out.push_str(&format!("{}", outcome.genotype));
    out.push_str("\nOperator histogram across all ST-blocks:\n");
    for (op, count) in outcome.genotype.op_histogram() {
        out.push_str(&format!("  {:10} x{}\n", op.label(), count));
    }
    out.push_str(&format!(
        "\ncompact genotype: {}\n(search took {:.1}s; reusable via Genotype::from_text)\n",
        outcome.genotype.to_text(),
        outcome.stats.secs
    ));
    out
}
