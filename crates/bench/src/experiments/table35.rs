//! Table 35: transferability — the architecture searched on PEMS03 is
//! retrained on METR-LA and PEMS-BAY and compared against architectures
//! searched directly on those datasets.
//!
//! Expected shape: the transferred model is competitive (close to, but not
//! better than, the natively searched one).

use crate::experiments::{f2, pct};
use crate::{autocts_search_and_eval, prepare, print_table, ExpContext};
use autocts::AutoCts;
use cts_data::DatasetSpec;

/// Run the transfer study.
pub fn run(ctx: &ExpContext) -> String {
    // search once on PEMS03-like data
    let p03 = prepare(ctx, &DatasetSpec::pems03());
    let auto = AutoCts::new(ctx.search_config());
    let donor = auto.search(&p03.spec, &p03.data.graph, &p03.windows);

    let mut rows = Vec::new();
    for spec in [DatasetSpec::metr_la(), DatasetSpec::pems_bay()] {
        let p = prepare(ctx, &spec);
        // transferred genotype, retrained on the target dataset
        let transferred = auto.evaluate(
            &donor.genotype,
            &p.spec,
            &p.data.graph,
            &p.windows,
            ctx.eval_epochs,
        );
        // natively searched
        let (_, native) = autocts_search_and_eval(&ctx.search_config(), ctx, &p);
        for (label, report) in [("Transferred Model", &transferred), ("AutoCTS", &native)] {
            let mut row = vec![spec.name.clone(), label.to_string()];
            for &h in &[3usize, 6, 12] {
                let m = &report.horizons[h - 1];
                row.push(f2(m.mae));
                row.push(f2(m.rmse));
                row.push(pct(m.mape));
            }
            rows.push(row);
        }
    }
    print_table(
        "Table 35: Transferability (searched on PEMS03-like)",
        &[
            "Dataset", "Model", "MAE@15", "RMSE@15", "MAPE@15", "MAE@30", "RMSE@30", "MAPE@30",
            "MAE@60", "RMSE@60", "MAPE@60",
        ],
        &rows,
    )
}
