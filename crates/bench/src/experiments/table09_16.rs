//! Tables 9–16: ablation studies on all eight datasets.
//!
//! Variants (§4.2.3): full AutoCTS, *w/o design principles* (full Table 1
//! operator set), *w/o temperature* (τ ≡ 1), *w/o macro search* (single
//! shared block, stacked), and *macro only* (topology search over four
//! human-designed ST-blocks). Each row reports accuracy plus search cost.
//! Expected shape: AutoCTS best or near-best; w/o-design-principles much
//! slower; macro-only fastest but least accurate.

use crate::experiments::{f2, f4, pct, sweep_specs};
use crate::{
    autocts_search_and_eval, macro_only_search_and_eval, prepare, print_table, ExpContext,
    Prepared,
};
use cts_data::Task;

fn metric_cells(p: &Prepared, report: &autocts::eval::EvalReport) -> Vec<String> {
    match p.spec.task {
        Task::MultiStep => vec![
            f2(report.overall.mae),
            f2(report.overall.rmse),
            pct(report.overall.mape),
        ],
        Task::SingleStep { .. } => vec![
            f4(report.overall.rrse),
            f4(report.overall.corr),
            String::new(),
        ],
    }
}

/// Run the ablations for every dataset (Tables 9–16 in order).
pub fn run(ctx: &ExpContext) -> String {
    let mut out = String::new();
    let specs = sweep_specs(ctx);
    for (idx, spec) in specs.iter().enumerate() {
        let p = prepare(ctx, spec);
        let mut rows = Vec::new();
        let variants: Vec<(&str, autocts::SearchConfig)> = vec![
            ("AutoCTS", ctx.search_config()),
            (
                "w/o design principles",
                ctx.search_config().without_design_principles(),
            ),
            ("w/o temperature", ctx.search_config().without_temperature()),
            ("w/o macro search", ctx.search_config().without_macro_search()),
        ];
        for (name, cfg) in variants {
            let (outcome, report) = autocts_search_and_eval(&cfg, ctx, &p);
            let mut row = vec![name.to_string()];
            row.extend(metric_cells(&p, &report));
            row.push(format!("{:.1}", outcome.stats.secs));
            rows.push(row);
        }
        {
            let (report, secs) = macro_only_search_and_eval(ctx, &p);
            let mut row = vec!["macro only".to_string()];
            row.extend(metric_cells(&p, &report));
            row.push(format!("{secs:.1}"));
            rows.push(row);
        }
        let headers = match p.spec.task {
            Task::MultiStep => vec!["Variant", "MAE", "RMSE", "MAPE", "Search (s)"],
            Task::SingleStep { .. } => vec!["Variant", "RRSE", "CORR", "", "Search (s)"],
        };
        out.push_str(&print_table(
            &format!("Table {}: Ablation Studies, {} (synthetic)", 9 + idx, spec.name),
            &headers,
            &rows,
        ));
    }
    out
}
