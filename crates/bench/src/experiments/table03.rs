//! Table 3: GCN and attention variant pre-study (design principle 2).
//!
//! Compares Diffusion GCN vs Chebyshev GCN and Informer vs Transformer as
//! single-operator probes in an identical scaffold, on METR-LA- and
//! PEMS03-like data; reports test MAE. The paper's finding to reproduce:
//! DGCN < Cheb-GCN (better), Informer ≈ Transformer.

use crate::experiments::f2;
use crate::{prepare, print_table, train_single_op_model, ExpContext};
use cts_data::DatasetSpec;
use cts_ops::OpKind;

/// Run the variant comparison.
pub fn run(ctx: &ExpContext) -> String {
    let variants = [
        OpKind::Dgcn,
        OpKind::ChebGcn,
        OpKind::InformerT,
        OpKind::TransformerT,
    ];
    let mut rows = Vec::new();
    for spec in [DatasetSpec::metr_la(), DatasetSpec::pems03()] {
        let p = prepare(ctx, &spec);
        let mut row = vec![spec.name.clone()];
        for kind in variants {
            let report = train_single_op_model(kind, ctx, &p);
            row.push(f2(report.overall.mae));
        }
        rows.push(row);
    }
    print_table(
        "Table 3: Comparison of GCN and Attention Variants (MAE)",
        &["Dataset", "DGCN", "Cheby GCN", "Informer", "Transformer"],
        &rows,
    )
}
