//! Tables 27–34: training time per epoch, inference time per window, and
//! parameter counts for every model on every dataset.
//!
//! Expected shape: DCRNN slowest to train (sequential recurrence); the
//! convolutional models fastest; AutoCTS in between (it mixes CNN and
//! attention operators); all models' inference is fast enough for
//! streaming; AutoCTS's parameter count is comparable to the baselines.

use crate::experiments::sweep_specs;
use crate::{
    autocts_search_and_eval, prepare, print_table, run_baseline, ExpContext,
};
use cts_data::Task;

/// Run the runtime/parameter accounting.
pub fn run(ctx: &ExpContext) -> String {
    let mut out = String::new();
    let specs = sweep_specs(ctx);
    for (idx, spec) in specs.iter().enumerate() {
        let p = prepare(ctx, spec);
        let names: Vec<&str> = match p.spec.task {
            Task::MultiStep => vec!["DCRNN", "STGCN", "Graph WaveNet", "AGCRN", "MTGNN"],
            Task::SingleStep { .. } => vec!["LSTNet", "TPA-LSTM", "MTGNN"],
        };
        let mut rows = Vec::new();
        for name in names {
            let report = run_baseline(name, ctx, &p);
            rows.push(vec![
                name.to_string(),
                format!("{:.2}", report.train_secs_per_epoch),
                format!("{:.2}", report.inference_ms_per_window),
                report.parameters.to_string(),
            ]);
        }
        let (_, report) = autocts_search_and_eval(&ctx.search_config(), ctx, &p);
        rows.push(vec![
            "AutoCTS".to_string(),
            format!("{:.2}", report.train_secs_per_epoch),
            format!("{:.2}", report.inference_ms_per_window),
            report.parameters.to_string(),
        ]);
        out.push_str(&print_table(
            &format!("Table {}: Runtime and Parameters, {} (synthetic)", 27 + idx, spec.name),
            &["Model", "Training (s/epoch)", "Inference (ms/window)", "Parameters"],
            &rows,
        ));
    }
    out
}
