//! Tables 5–6: multi-step forecasting accuracy on the six traffic
//! datasets — the headline comparison of AutoCTS against all baselines.
//!
//! Table 5 (METR-LA, PEMS-BAY) reports MAE/RMSE/MAPE at the 15/30/60-min
//! horizons (steps 3/6/12); Table 6 (PEMS03/04/07/08) reports the average
//! over all 12 horizons. AutoSTG joins only on the Table 5 datasets (it
//! cannot run on the PEMS datasets in the paper).

use crate::experiments::{f2, multistep_specs, pct};
use crate::{
    autocts_search_and_eval, autostg_config, prepare, print_table, run_baseline, ExpContext,
};
use autocts::eval::EvalReport;
use cts_data::EvalMetrics;

fn horizon_cells(report: &EvalReport, horizons: &[usize]) -> Vec<String> {
    let mut cells = Vec::new();
    for &h in horizons {
        let m = &report.horizons[h - 1];
        cells.push(f2(m.mae));
        cells.push(f2(m.rmse));
        cells.push(pct(m.mape));
    }
    cells
}

fn avg_cells(m: &EvalMetrics) -> Vec<String> {
    vec![f2(m.mae), f2(m.rmse), pct(m.mape)]
}

/// Which baselines run on multi-step traffic (all seven; LSTNet and
/// TPA-LSTM were designed for single-step but the harness supports them
/// everywhere, mirroring the paper's table layout we include them only in
/// Table 8).
const TRAFFIC_BASELINES: [&str; 5] = ["DCRNN", "STGCN", "Graph WaveNet", "AGCRN", "MTGNN"];

/// Run Tables 5 and 6.
pub fn run(ctx: &ExpContext) -> String {
    let mut out = String::new();
    for spec in multistep_specs() {
        let p = prepare(ctx, &spec);
        let is_table5 = matches!(spec.name.as_str(), "METR-LA" | "PEMS-BAY");
        let mut rows: Vec<Vec<String>> = Vec::new();
        for name in TRAFFIC_BASELINES {
            let report = run_baseline(name, ctx, &p);
            let mut row = vec![name.to_string()];
            if is_table5 {
                row.extend(horizon_cells(&report, &[3, 6, 12]));
            } else {
                row.extend(avg_cells(&report.overall));
            }
            rows.push(row);
        }
        if is_table5 {
            // AutoSTG-lite (restricted search space, micro-only)
            let (_, report) = autocts_search_and_eval(&autostg_config(ctx), ctx, &p);
            let mut row = vec!["AutoSTG".to_string()];
            row.extend(horizon_cells(&report, &[3, 6, 12]));
            rows.push(row);
        }
        let (_, report) = autocts_search_and_eval(&ctx.search_config(), ctx, &p);
        let mut row = vec!["AutoCTS".to_string()];
        if is_table5 {
            row.extend(horizon_cells(&report, &[3, 6, 12]));
        } else {
            row.extend(avg_cells(&report.overall));
        }
        rows.push(row);

        let headers: Vec<&str> = if is_table5 {
            vec![
                "Model", "MAE@15", "RMSE@15", "MAPE@15", "MAE@30", "RMSE@30", "MAPE@30",
                "MAE@60", "RMSE@60", "MAPE@60",
            ]
        } else {
            vec!["Model", "MAE", "RMSE", "MAPE"]
        };
        let table_no = if is_table5 { 5 } else { 6 };
        out.push_str(&print_table(
            &format!("Table {table_no}: Multi-step Forecasting, {} (synthetic)", spec.name),
            &headers,
            &rows,
        ));
    }
    out
}
