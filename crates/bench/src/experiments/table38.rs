//! Table 38: categorisation of human-designed ST-blocks — rendered from
//! the static taxonomy in `cts-ops`, alongside the Table 1 operator
//! catalogue with the compact-set selection.

use crate::{print_table, ExpContext};
use cts_ops::{operator_table, st_block_taxonomy};

/// Render the taxonomy tables.
pub fn run(_ctx: &ExpContext) -> String {
    let mut out = String::new();

    let rows: Vec<Vec<String>> = st_block_taxonomy()
        .into_iter()
        .map(|c| vec![c.s_family.to_string(), c.t_family.to_string(), c.models.to_string()])
        .collect();
    out.push_str(&print_table(
        "Table 38: Categorization of Human Designed ST-blocks",
        &["S-family", "T-family", "Models"],
        &rows,
    ));

    let rows: Vec<Vec<String>> = operator_table()
        .into_iter()
        .map(|r| {
            vec![
                format!("{:?}", r.family),
                r.kind.label().to_string(),
                r.literature.to_string(),
                r.equation.to_string(),
                if r.in_compact_set { "kept".into() } else { "pruned".into() },
            ]
        })
        .collect();
    out.push_str(&print_table(
        "Table 1: S/T operator catalogue and compact-set selection",
        &["Family", "Operator", "Literature", "Equation", "Compact set"],
        &rows,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taxonomy_renders() {
        let s = run(&ExpContext::smoke());
        assert!(s.contains("Table 38"));
        assert!(s.contains("dgcn"));
        assert!(s.contains("kept"));
    }
}
