//! Tables 36–37: impact of the number of incoming edges per node in the
//! derived ST-block (Edge ∈ {2, 3}) on METR-LA- and PEMS03-like data.
//!
//! Expected shape: Edge=3 gains little accuracy but costs noticeably more
//! training time per epoch.

use crate::experiments::{f2, pct};
use crate::{autocts_search_and_eval, prepare, print_table, ExpContext};
use cts_data::DatasetSpec;

/// Run the edge-count sweep.
pub fn run(ctx: &ExpContext) -> String {
    let mut out = String::new();
    for (tno, spec) in [(36, DatasetSpec::metr_la()), (37, DatasetSpec::pems03())] {
        let p = prepare(ctx, &spec);
        let mut rows = Vec::new();
        for edges in [2usize, 3] {
            let cfg = autocts::SearchConfig {
                edges_per_node: edges,
                ..ctx.search_config()
            };
            let (_, report) = autocts_search_and_eval(&cfg, ctx, &p);
            rows.push(vec![
                edges.to_string(),
                f2(report.overall.mae),
                f2(report.overall.rmse),
                pct(report.overall.mape),
                format!("{:.2}", report.train_secs_per_epoch),
            ]);
        }
        out.push_str(&print_table(
            &format!("Table {tno}: Incoming edges per node, {} (synthetic)", spec.name),
            &["# Edges", "MAE", "RMSE", "MAPE", "Training (s/epoch)"],
            &rows,
        ));
    }
    out
}
