//! The *macro only* ablation (§4.2.3): human-designed ST-blocks as atomic
//! units, searching only the backbone topology `γ`.

use crate::{ExpContext, Prepared};
use autocts::eval::{evaluate_model, inference_ms_per_window, EvalReport};
use autocts::MacroTopology;
use cts_autograd::{Parameter, Tape, Var};
use cts_baselines::blocks::{macro_only_blocks, HumanStBlock};
use cts_data::{batches_from_windows, shuffle_windows};
use cts_nn::{clip_grad_norm, Adam, Forecaster, Linear, LossKind, Optimizer, TrainConfig};
use cts_ops::GraphContext;
use rand::{rngs::SmallRng, SeedableRng};

/// Embedding → {STGCN, DCRNN, GWNet, MTGNN} blocks wired by a learnable
/// macro topology → output head.
pub struct MacroOnlyModel {
    embed: Linear,
    blocks: Vec<Box<dyn HumanStBlock>>,
    topology: MacroTopology,
    output: Linear,
    ctx: GraphContext,
    input_len: usize,
    d: usize,
    out_scale: f32,
    out_shift: f32,
}

impl MacroOnlyModel {
    /// Build the macro-only supernet for a prepared dataset.
    pub fn new(ctx_exp: &ExpContext, p: &Prepared) -> Self {
        let mut rng = SmallRng::seed_from_u64(ctx_exp.seed);
        let d = ctx_exp.d_model;
        let spec = &p.spec;
        let q = match spec.task {
            cts_data::Task::MultiStep => spec.output_len,
            cts_data::Task::SingleStep { .. } => 1,
        };
        let graph_ctx = {
            let c = GraphContext::from_graph(&p.data.graph, 2);
            if c.has_spatial_signal() {
                c
            } else {
                GraphContext::from_graph(&p.data.graph, 2).with_adaptive(&mut rng, 8)
            }
        };
        let blocks = macro_only_blocks(&mut rng, d, p.data.graph.n(), 8);
        let topology = MacroTopology::new(&mut rng, "macro", blocks.len());
        Self {
            embed: Linear::new(&mut rng, "mo.embed", spec.features, d, true),
            blocks,
            topology,
            output: Linear::new(&mut rng, "mo.out", spec.input_len * d, q, true),
            ctx: graph_ctx,
            input_len: spec.input_len,
            d,
            out_scale: p.windows.scaler.target_std(),
            out_shift: p.windows.scaler.target_mean(),
        }
    }

    /// Architecture parameters (γ only — the blocks are fixed designs).
    pub fn arch_parameters(&self) -> Vec<Parameter> {
        self.topology.parameters()
    }

    /// Network weights.
    pub fn weight_parameters(&self) -> Vec<Parameter> {
        let mut v = self.embed.parameters();
        for b in &self.blocks {
            v.extend(b.parameters());
        }
        v.extend(self.output.parameters());
        v.extend(self.ctx.parameters());
        v
    }

    /// Names of the block inventory.
    pub fn block_names(&self) -> Vec<&'static str> {
        self.blocks.iter().map(|b| b.name()).collect()
    }

    /// The derived backbone (argmax γ per block).
    pub fn derived_backbone(&self) -> Vec<usize> {
        self.topology.derive()
    }
}

impl Forecaster for MacroOnlyModel {
    fn forward(&self, tape: &Tape, x: &Var) -> Var {
        let z = self.embed.forward(tape, x);
        let mut sources = vec![z];
        let mut outs = Vec::with_capacity(self.blocks.len());
        for (j, block) in self.blocks.iter().enumerate() {
            let input = self.topology.mix_input(tape, &sources, j + 1);
            let out = block.forward(tape, &input, &self.ctx).add(&input);
            sources.push(out.clone());
            outs.push(out);
        }
        let mut merged = outs[0].clone();
        for o in &outs[1..] {
            merged = merged.add(o);
        }
        let s = merged.shape();
        let flat = merged
            .relu()
            .reshape(&[s[0], s[1], self.input_len * self.d]);
        self.output
            .forward(tape, &flat)
            .scale(self.out_scale)
            .add_scalar(self.out_shift)
    }

    fn parameters(&self) -> Vec<Parameter> {
        let mut v = self.weight_parameters();
        v.extend(self.arch_parameters());
        v
    }

    fn name(&self) -> &str {
        "macro only"
    }
}

/// Bi-level search over γ (same alternating scheme as Algorithm 1), then
/// retrain the whole model and evaluate.
pub fn macro_only_search_and_eval(ctx: &ExpContext, p: &Prepared) -> (EvalReport, f64) {
    let started = std::time::Instant::now();
    let model = MacroOnlyModel::new(ctx, p);
    let mut rng = SmallRng::seed_from_u64(ctx.seed ^ 0xabcd);
    let (mut pseudo_train, mut pseudo_val) = p.windows.pseudo_split();
    let mut arch_opt = Adam::for_architecture(model.arch_parameters(), 3e-4, 1e-3);
    let mut weight_opt = Adam::new(model.weight_parameters(), 1e-3, 1e-4);
    let loss_kind = LossKind::MaskedMae {
        null_value: p.spec.null_value,
    };
    for _ in 0..ctx.search_epochs {
        shuffle_windows(&mut rng, &mut pseudo_train);
        shuffle_windows(&mut rng, &mut pseudo_val);
        let tb = batches_from_windows(&pseudo_train, ctx.batch);
        let vb = batches_from_windows(&pseudo_val, ctx.batch);
        for (step, (x_tr, y_tr)) in tb.iter().enumerate() {
            let (x_va, y_va) = &vb[step % vb.len()];
            let tape = Tape::new();
            let pred = model.forward(&tape, &tape.constant(x_va.clone()));
            let loss = loss_kind.compute(&tape, &pred, y_va);
            tape.backward(&loss);
            for pm in weight_opt.params() {
                pm.zero_grad();
            }
            arch_opt.step();
            let tape = Tape::new();
            let pred = model.forward(&tape, &tape.constant(x_tr.clone()));
            let loss = loss_kind.compute(&tape, &pred, y_tr);
            tape.backward(&loss);
            for pm in arch_opt.params() {
                pm.zero_grad();
            }
            clip_grad_norm(weight_opt.params(), 5.0);
            weight_opt.step();
        }
    }
    let search_secs = started.elapsed().as_secs_f64();

    // Evaluation stage: retrain a fresh macro-only model with the topology
    // frozen to the derived argmax (approximated by continuing training of
    // the weights with γ fixed — the search space has only B! topologies,
    // so the gap is small).
    let eval_model = MacroOnlyModel::new(ctx, p);
    for (gp, val) in eval_model
        .arch_parameters()
        .iter()
        .zip(model.arch_parameters().iter())
    {
        gp.set_value(val.value().clone());
    }
    let cfg = TrainConfig {
        epochs: ctx.eval_epochs,
        lr: 1e-3,
        weight_decay: 1e-4,
        clip: 5.0,
        loss: loss_kind,
        patience: 0,
        ..TrainConfig::default()
    };
    let merged = p.windows.train_and_val();
    let train_batches = batches_from_windows(&merged, ctx.batch);
    let test_batches = batches_from_windows(&p.windows.test, ctx.batch);
    cts_nn::train_full(&eval_model, &train_batches, None, &cfg)
        .unwrap_or_else(|e| panic!("macro-only retraining failed: {e}"));
    let (overall, horizons) = evaluate_model(&eval_model, &test_batches, p.spec.null_value);
    let report = EvalReport {
        overall,
        horizons,
        train_secs_per_epoch: 0.0,
        inference_ms_per_window: inference_ms_per_window(&eval_model, &test_batches),
        parameters: cts_nn::count_parameters(&eval_model.parameters()),
    };
    (report, search_secs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prepare;
    use cts_data::DatasetSpec;

    #[test]
    fn macro_only_has_four_human_blocks() {
        let ctx = ExpContext::smoke();
        let p = prepare(&ctx, &DatasetSpec::metr_la());
        let m = MacroOnlyModel::new(&ctx, &p);
        assert_eq!(
            m.block_names(),
            vec!["STGCN-block", "DCRNN-block", "GWNet-block", "MTGNN-block"]
        );
        assert_eq!(m.arch_parameters().len(), 4);
    }

    #[test]
    fn macro_only_smoke_search() {
        let ctx = ExpContext::smoke();
        let p = prepare(&ctx, &DatasetSpec::metr_la());
        let (report, secs) = macro_only_search_and_eval(&ctx, &p);
        assert!(report.overall.mae.is_finite() && report.overall.mae > 0.0);
        assert!(secs > 0.0);
    }
}
