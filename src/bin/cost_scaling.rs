//! `cost-scaling`: pure static analysis of how every operator family's
//! resource footprint scales with graph size.
//!
//! For each operator family in the full Table 1 set, a canonical
//! two-block architecture dominated by that family is priced by
//! `cts_verify::analyze_cost` at N = 100, 300 and 1000 nodes — no tensor
//! is ever allocated, so the 1000-node column costs microseconds, not
//! the hours a training run would. Each priced architecture is then
//! checked against a fixed reference budget (calibrated to pass at
//! N = 100) and the report names, per family, which budget blows first
//! as N grows: FLOPs-per-step for the dense spatial families, peak
//! arena bytes for the attention families, and so on.
//!
//! This binary is pure reporting: it exits non-zero only if the analyzer
//! itself refuses an architecture it should accept.

use cts_ops::full_set;
use cts_verify::{
    analyze_cost, check_budgets, ArchSpec, BlockSpec, CostBudgets, LatencyModel, ModelDims, OpKind,
    VerifyReport,
};
use std::process::ExitCode;

const NODES: [usize; 3] = [100, 300, 1000];
const BATCH: usize = 8;

/// Reference budgets: sized so every family passes at N = 100 with the
/// dims below, making the blown column purely a statement about scaling.
const BUDGETS: CostBudgets = CostBudgets {
    max_flops_per_step: Some(6_000_000_000),
    max_peak_bytes: Some(1_500_000_000),
    max_latency_ms: Some(10_000.0),
};

fn dims(n: usize) -> ModelDims {
    ModelDims {
        features: 2,
        input_len: 12,
        horizon: 12,
        d_model: 32,
        num_nodes: Some(n),
        gcn_k: 2,
        adaptive: false,
        adaptive_emb: 0,
    }
}

/// A two-block architecture dominated by `op`: each block is the
/// canonical M = 3 derived topology with `op` on every slot, chained
/// across the backbone. `Zero` cannot carry a whole block (the analyzer
/// rightly rejects an identically-zero DAG), so it rides on the skip
/// slot of an identity block instead.
fn family_arch(op: OpKind, n: usize) -> ArchSpec {
    let edges = match op {
        OpKind::Zero => vec![
            (0, 1, OpKind::Identity),
            (1, 2, OpKind::Identity),
            (0, 2, OpKind::Zero),
        ],
        _ => vec![(0, 1, op), (1, 2, op), (0, 2, op)],
    };
    let block = BlockSpec { m: 3, edges };
    ArchSpec {
        dims: dims(n),
        blocks: vec![block.clone(), block],
        backbone: vec![0, 1],
    }
}

fn blown(report: &VerifyReport) -> String {
    let mut blown: Vec<String> = Vec::new();
    for f in report.errors() {
        let label = if f.message.contains("FLOPs") {
            format!("flops/step (first at {})", f.site)
        } else if f.message.contains("peak") {
            "peak bytes".to_string()
        } else {
            "latency".to_string()
        };
        if !blown.iter().any(|b| b.split(" (").next() == label.split(" (").next()) {
            blown.push(label);
        }
    }
    if blown.is_empty() {
        "within budget".into()
    } else {
        blown.join(" + ")
    }
}

fn main() -> ExitCode {
    println!(
        "cost-scaling: static pricing of each operator family at N = {NODES:?} nodes \
         (batch {BATCH}, d_model 32, T 12; pure analysis, nothing executed)"
    );
    let (flops_cap, bytes_cap, ms_cap) = (
        // invariant: BUDGETS is a const with all three caps Some
        BUDGETS.max_flops_per_step.unwrap(),
        BUDGETS.max_peak_bytes.unwrap(),
        BUDGETS.max_latency_ms.unwrap(),
    );
    println!(
        "budgets: {} GFLOPs/step, {} MB peak, {} ms predicted",
        flops_cap as f64 / 1e9,
        bytes_cap as f64 / 1e6,
        ms_cap,
    );
    let latency = LatencyModel::default();
    println!(
        "  {:<14} {:>6} {:>12} {:>12} {:>12} {:>12}  budget verdict",
        "family", "N", "GFLOPs", "peak MB", "ideal MB", "pred ms"
    );

    let mut failures = 0usize;
    for op in full_set() {
        for n in NODES {
            let arch = family_arch(op, n);
            let report = match analyze_cost(&arch, BATCH) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("  {:<14} {n:>6} ANALYSIS REFUSED: {e}", op.label());
                    failures += 1;
                    continue;
                }
            };
            let mut verdict = VerifyReport::default();
            check_budgets(&mut verdict, &report, &BUDGETS, &latency);
            println!(
                "  {:<14} {:>6} {:>12.3} {:>12.2} {:>12.2} {:>12.2}  {}",
                op.label(),
                n,
                report.total.flops as f64 / 1e9,
                report.peak_bytes as f64 / 1e6,
                report.ideal_peak_bytes as f64 / 1e6,
                report.predicted_ns(&latency) / 1e6,
                blown(&verdict),
            );
        }
    }

    if failures == 0 {
        println!("OK: every family priced at every graph size, including 1000 nodes, in pure analysis.");
        ExitCode::SUCCESS
    } else {
        eprintln!("{failures} architectures refused by the cost model");
        ExitCode::FAILURE
    }
}
