//! `verify-space`: sweep the discrete AutoCTS search space through the
//! static analyzer and cross-check its verdicts against the runtime.
//!
//! For every assignment of the compact operator set to the canonical
//! derived micro topology (M = 3: edges (0,1), (1,2), (0,2)) crossed with
//! every macro backbone at B = 2, the sweep:
//!
//! 1. runs `cts-verify` pre-flight (shape inference + gradient
//!    reachability + structure) — no tensors allocated;
//! 2. smoke-trains every *accepted* candidate for one step,
//!    cross-checks the static edge-liveness verdict against the autograd
//!    tape (`Tape::reachable_params`) and the actual gradients, and
//!    proves the compiled tape-free plan (`cts-runtime`) bit-identical
//!    to the tape forward;
//! 3. for candidates rejected as gradient-starved or identically zero,
//!    builds the model anyway and proves the rejection correct: the
//!    starved parameters really receive an exactly-zero gradient.
//!
//! Any disagreement between the analyzer and the runtime — an accepted
//! candidate that panics, a liveness verdict the tape contradicts — is a
//! false positive/negative and exits non-zero. `scripts/check.sh` runs
//! this binary as part of the gate.

use autocts::preflight::arch_spec;
use autocts::{BlockGenotype, DerivedModel, Genotype, SearchConfig};
use cts_autograd::Tape;
use cts_data::{batches_from_windows, build_windows, generate, DatasetSpec, Scaler};
use cts_nn::{Forecaster, LossKind};
use cts_ops::compact_set;
use cts_verify::{audit_determinism, FindingKind, VerifyReport};
use rand::{rngs::SmallRng, SeedableRng};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::process::ExitCode;

/// Edge slots of the canonical M = 3 derived block: the mandatory
/// predecessor edges (0,1), (1,2) plus the extra edge (0,2).
const SLOTS: [(usize, usize); 3] = [(0, 1), (1, 2), (0, 2)];
const B: usize = 2;

fn main() -> ExitCode {
    let ops = compact_set();
    let spec = DatasetSpec::metr_la().scaled(0.04, 0.015);
    let data = generate(&spec, 11);
    let windows = build_windows(&data, 6, 24);
    let cfg = SearchConfig {
        m: 3,
        b: B,
        d_model: 8,
        batch_size: 2,
        ..Default::default()
    };
    let train_batches = batches_from_windows(&windows.train, cfg.batch_size);
    let backbones: Vec<Vec<usize>> = vec![vec![0, 0], vec![0, 1]];

    let mut candidates = 0usize;
    let mut accepted = 0usize;
    let mut smoked = 0usize;
    let mut rejected_proven = 0usize;
    let mut rejections: BTreeMap<&'static str, usize> = BTreeMap::new();
    let mut inconsistencies: Vec<String> = Vec::new();

    for ai in 0..ops.len() {
        for bi in 0..ops.len() {
            for ci in 0..ops.len() {
                let combo = [ops[ai], ops[bi], ops[ci]];
                let block = BlockGenotype {
                    m: 3,
                    edges: SLOTS
                        .iter()
                        .zip(combo)
                        .map(|(&(f, t), op)| (f, t, op))
                        .collect(),
                };
                // Both backbones share the block pair, so the runtime
                // cross-check runs once per operator combo (on the chain
                // backbone) while the static pass covers every backbone.
                let mut reports = Vec::new();
                for backbone in &backbones {
                    candidates += 1;
                    let genotype = Genotype {
                        blocks: vec![block.clone(); B],
                        backbone: backbone.clone(),
                    };
                    let report = cts_verify::validate_genotype(&arch_spec(
                        &cfg, &genotype, &spec, &data.graph,
                    ));
                    if report.is_ok() {
                        accepted += 1;
                    } else {
                        for f in report.errors() {
                            *rejections.entry(kind_name(f.kind)).or_insert(0) += 1;
                        }
                    }
                    reports.push((genotype, report));
                }
                let (genotype, report) = &reports[1]; // chain backbone
                let seed = (ai * 36 + bi * 6 + ci) as u64;
                if report.is_ok() {
                    smoked += 1;
                    if let Err(msg) = smoke_candidate(
                        &cfg, genotype, &spec, &data, &train_batches, &windows.scaler, report, seed,
                    ) {
                        inconsistencies.push(format!("{}: {msg}", genotype.to_text()));
                    }
                } else if report.errors().all(|f| {
                    matches!(f.kind, FindingKind::StarvedParam | FindingKind::AllZeroInput)
                }) {
                    // The model is still buildable: prove the rejection.
                    rejected_proven += 1;
                    if let Err(msg) = smoke_candidate(
                        &cfg, genotype, &spec, &data, &train_batches, &windows.scaler, report, seed,
                    ) {
                        inconsistencies.push(format!("{}: {msg}", genotype.to_text()));
                    }
                }
            }
        }
    }

    println!("verify-space: M=3 micro slots x {} compact ops x {} backbones at B={B}", ops.len(), backbones.len());
    println!("  candidates analyzed : {candidates}");
    println!("  accepted            : {accepted}");
    println!("  rejected            : {}", candidates - accepted);
    for (kind, count) in &rejections {
        println!("    {kind}: {count} finding(s)");
    }
    println!(
        "  smoke-trained       : {smoked} accepted combos + {rejected_proven} rejected combos \
         (backbone variants share blocks, so each operator combo trains once)"
    );

    let det = audit_determinism();
    println!(
        "  determinism audit   : {} registered kernels, {}",
        det.kernels.len(),
        if det.is_ok() { "all order-fixed" } else { "VIOLATIONS" }
    );
    for f in &det.findings {
        inconsistencies.push(f.to_string());
    }

    if inconsistencies.is_empty() {
        println!("OK: static verdicts agree with the runtime on every candidate.");
        ExitCode::SUCCESS
    } else {
        eprintln!("{} inconsistencies:", inconsistencies.len());
        for m in &inconsistencies {
            eprintln!("  {m}");
        }
        ExitCode::FAILURE
    }
}

/// Build the model, run one forward/backward step, and cross-check the
/// analyzer's edge-liveness verdict against the tape and the gradients.
#[allow(clippy::too_many_arguments)]
fn smoke_candidate(
    cfg: &SearchConfig,
    genotype: &Genotype,
    spec: &DatasetSpec,
    data: &cts_data::CtsData,
    train_batches: &[(cts_tensor::Tensor, cts_tensor::Tensor)],
    scaler: &Scaler,
    report: &VerifyReport,
    seed: u64,
) -> Result<(), String> {
    let result = catch_unwind(AssertUnwindSafe(|| {
        let mut rng = SmallRng::seed_from_u64(seed);
        let model = DerivedModel::new(&mut rng, cfg, genotype, spec, &data.graph, scaler);
        let (x, y) = &train_batches[0];
        let tape = Tape::new();
        let xv = tape.constant(x.clone());
        let pred = model.forward(&tape, &xv);
        let loss = LossKind::MaskedMae { null_value: spec.null_value }.compute(&tape, &pred, y);
        let reachable = tape.reachable_params(&loss);
        tape.backward(&loss);

        let params = model.parameters();
        let mut problems = Vec::new();
        // Accepted candidates must also compile to a tape-free plan whose
        // forward is bit-identical to the tape forward (epsilon 0).
        if report.is_ok() {
            match model.compiled_plan().map_err(|e| e.to_string()).and_then(
                |plan| plan.try_run(x).map_err(|e| e.to_string()),
            ) {
                Ok(compiled) => {
                    let tape_out = pred.value();
                    if compiled.shape() != tape_out.shape() {
                        problems.push(format!(
                            "compiled shape {:?} != tape shape {:?}",
                            compiled.shape(),
                            tape_out.shape()
                        ));
                    } else if let Some(i) = compiled
                        .data()
                        .iter()
                        .zip(tape_out.data().iter())
                        .position(|(a, b)| a.to_bits() != b.to_bits())
                    {
                        problems.push(format!(
                            "compiled forward diverges from tape at scalar {i}: {} vs {}",
                            compiled.data()[i],
                            tape_out.data()[i]
                        ));
                    }
                }
                Err(e) => problems.push(format!("accepted candidate failed to compile/run: {e}")),
            }
        }
        for (i, block) in genotype.blocks.iter().enumerate() {
            for (k, (_, _, op)) in block.edges.iter().enumerate() {
                if !op.is_parametric() {
                    continue;
                }
                let prefix = format!("block{i}.e{k}.");
                let edge_params: Vec<_> = params
                    .iter()
                    .filter(|p| p.name().starts_with(&prefix))
                    .collect();
                if edge_params.is_empty() {
                    problems.push(format!("no parameters found under {prefix}"));
                    continue;
                }
                let static_live = report.edge_liveness[i][k];
                let tape_live = edge_params
                    .iter()
                    .any(|p| reachable.iter().any(|q| q.ptr_eq(p)));
                if static_live != tape_live {
                    problems.push(format!(
                        "{prefix} static liveness {static_live} but tape reachability {tape_live}"
                    ));
                }
                if !static_live {
                    for p in &edge_params {
                        let g = p.grad().norm();
                        if g != 0.0 {
                            problems.push(format!(
                                "{} declared starved but has gradient norm {g}",
                                p.name()
                            ));
                        }
                    }
                }
            }
        }
        problems
    }));
    match result {
        Ok(problems) if problems.is_empty() => Ok(()),
        Ok(problems) => Err(problems.join("; ")),
        Err(_) => Err("panicked during smoke training".into()),
    }
}

fn kind_name(kind: FindingKind) -> &'static str {
    match kind {
        FindingKind::MalformedBlock => "malformed block",
        FindingKind::DanglingNode => "dangling node",
        FindingKind::BadBackbone => "bad backbone",
        FindingKind::RankError => "rank error",
        FindingKind::ChannelMismatch => "channel mismatch",
        FindingKind::NodeCountMismatch => "node-count mismatch",
        FindingKind::BroadcastMismatch => "broadcast mismatch",
        FindingKind::RoundTrip => "round-trip",
        FindingKind::AllZeroInput => "all-zero input",
        FindingKind::StarvedParam => "starved parameter",
        FindingKind::DeadNode => "dead node",
        FindingKind::NonDeterministicKernel => "non-deterministic kernel",
    }
}
