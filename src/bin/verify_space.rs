//! `verify-space`: sweep the discrete AutoCTS search space through the
//! static analyzer and cross-check its verdicts against the runtime.
//!
//! For every assignment of the compact operator set to the canonical
//! derived micro topology (M = 3: edges (0,1), (1,2), (0,2)) crossed with
//! every macro backbone at B = 2, the sweep:
//!
//! 1. runs `cts-verify` pre-flight (shape inference + gradient
//!    reachability + structure) — no tensors allocated;
//! 2. smoke-trains every *accepted* candidate for one step,
//!    cross-checks the static edge-liveness verdict against the autograd
//!    tape (`Tape::reachable_params`) and the actual gradients, and
//!    proves the compiled tape-free plan (`cts-runtime`) bit-identical
//!    to the tape forward;
//! 3. for candidates rejected as gradient-starved or identically zero,
//!    builds the model anyway and proves the rejection correct: the
//!    starved parameters really receive an exactly-zero gradient.
//!
//! Any disagreement between the analyzer and the runtime — an accepted
//! candidate that panics, a liveness verdict the tape contradicts — is a
//! false positive/negative and exits non-zero. `scripts/check.sh` runs
//! this binary as part of the gate.
//!
//! Every accepted candidate is additionally priced by the static cost
//! model (`cts_verify::analyze_cost`): the candidate table gains FLOPs,
//! peak-bytes and predicted-latency columns, and any candidate whose
//! priced forward latency disagrees with the measured compiled-plan
//! forward by more than 10× in either direction is listed as a
//! calibration bug rather than silently accepted.

use autocts::preflight::arch_spec;
use autocts::{BlockGenotype, DerivedModel, Genotype, SearchConfig};
use cts_autograd::Tape;
use cts_data::{batches_from_windows, build_windows, generate, DatasetSpec, Scaler};
use cts_nn::{Forecaster, LossKind};
use cts_ops::compact_set;
use cts_verify::{audit_determinism, CostReport, FindingKind, LatencyModel, VerifyReport};
use rand::{rngs::SmallRng, SeedableRng};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::process::ExitCode;

use cts_obs::Stopwatch;

/// Edge slots of the canonical M = 3 derived block: the mandatory
/// predecessor edges (0,1), (1,2) plus the extra edge (0,2).
const SLOTS: [(usize, usize); 3] = [(0, 1), (1, 2), (0, 2)];
const B: usize = 2;

fn main() -> ExitCode {
    let ops = compact_set();
    let spec = DatasetSpec::metr_la().scaled(0.04, 0.015);
    let data = generate(&spec, 11);
    let windows = build_windows(&data, 6, 24);
    let cfg = SearchConfig {
        m: 3,
        b: B,
        d_model: 8,
        batch_size: 2,
        ..Default::default()
    };
    let train_batches = batches_from_windows(&windows.train, cfg.batch_size);
    let backbones: Vec<Vec<usize>> = vec![vec![0, 0], vec![0, 1]];

    let latency = LatencyModel::calibrate();
    println!(
        "calibrated latency model: dense {:.3} ns/flop, light {:.3} ns/flop, dispatch {:.0} ns",
        latency.dense_ns_per_flop, latency.light_ns_per_flop, latency.dispatch_ns
    );

    let mut candidates = 0usize;
    let mut accepted = 0usize;
    let mut smoked = 0usize;
    let mut rejected_proven = 0usize;
    let mut rejections: BTreeMap<&'static str, usize> = BTreeMap::new();
    let mut inconsistencies: Vec<String> = Vec::new();
    // One row per analyzed candidate: genotype, backbone, verdict, cost.
    let mut table: Vec<String> = Vec::new();
    let mut calibration_bugs: Vec<String> = Vec::new();

    for ai in 0..ops.len() {
        for bi in 0..ops.len() {
            for ci in 0..ops.len() {
                let combo = [ops[ai], ops[bi], ops[ci]];
                let block = BlockGenotype {
                    m: 3,
                    edges: SLOTS
                        .iter()
                        .zip(combo)
                        .map(|(&(f, t), op)| (f, t, op))
                        .collect(),
                };
                // Both backbones share the block pair, so the runtime
                // cross-check runs once per operator combo (on the chain
                // backbone) while the static pass covers every backbone.
                let mut reports = Vec::new();
                for backbone in &backbones {
                    candidates += 1;
                    let genotype = Genotype {
                        blocks: vec![block.clone(); B],
                        backbone: backbone.clone(),
                    };
                    let arch = arch_spec(&cfg, &genotype, &spec, &data.graph);
                    let report = cts_verify::validate_genotype(&arch);
                    let cost = if report.is_ok() {
                        accepted += 1;
                        match cts_verify::analyze_cost(&arch, cfg.batch_size) {
                            Ok(c) => Some(c),
                            Err(e) => {
                                inconsistencies.push(format!(
                                    "{}: accepted by the analyzer but refused by the cost model: {e}",
                                    genotype.to_text()
                                ));
                                None
                            }
                        }
                    } else {
                        for f in report.errors() {
                            *rejections.entry(kind_name(f.kind)).or_insert(0) += 1;
                        }
                        None
                    };
                    table.push(table_row(&genotype, backbone, &report, cost.as_ref(), &latency));
                    reports.push((genotype, report, cost));
                }
                let (genotype, report, cost) = &reports[1]; // chain backbone
                let seed = (ai * 36 + bi * 6 + ci) as u64;
                if report.is_ok() {
                    smoked += 1;
                    match smoke_candidate(
                        &cfg, genotype, &spec, &data, &train_batches, &windows.scaler, report, seed,
                    ) {
                        Err(msg) => inconsistencies.push(format!("{}: {msg}", genotype.to_text())),
                        Ok(Some(measured_ns)) => {
                            if let Some(c) = cost {
                                let predicted_ns = c.predicted_ns(&latency);
                                let ratio = predicted_ns / measured_ns.max(1.0);
                                if !(0.1..=10.0).contains(&ratio) {
                                    calibration_bugs.push(format!(
                                        "{}: predicted {:.1} us vs measured {:.1} us forward ({}x off)",
                                        genotype.to_text(),
                                        predicted_ns / 1e3,
                                        measured_ns / 1e3,
                                        if ratio > 1.0 { format!("{ratio:.1}") } else { format!("1/{:.1}", 1.0 / ratio) },
                                    ));
                                }
                            }
                        }
                        Ok(None) => {}
                    }
                } else if report.errors().all(|f| {
                    matches!(f.kind, FindingKind::StarvedParam | FindingKind::AllZeroInput)
                }) {
                    // The model is still buildable: prove the rejection.
                    rejected_proven += 1;
                    if let Err(msg) = smoke_candidate(
                        &cfg, genotype, &spec, &data, &train_batches, &windows.scaler, report, seed,
                    ) {
                        inconsistencies.push(format!("{}: {msg}", genotype.to_text()));
                    }
                }
            }
        }
    }

    println!("verify-space: M=3 micro slots x {} compact ops x {} backbones at B={B}", ops.len(), backbones.len());
    println!("  {:<40} {:>8} {:>10} {:>10} {:>10}", "genotype", "verdict", "MFLOPs", "peak KB", "pred us");
    for row in &table {
        println!("  {row}");
    }
    println!("  candidates analyzed : {candidates}");
    println!("  accepted            : {accepted}");
    println!("  rejected            : {}", candidates - accepted);
    for (kind, count) in &rejections {
        println!("    {kind}: {count} finding(s)");
    }
    println!(
        "  smoke-trained       : {smoked} accepted combos + {rejected_proven} rejected combos \
         (backbone variants share blocks, so each operator combo trains once)"
    );
    if calibration_bugs.is_empty() {
        println!("  latency calibration : every smoked candidate priced within 10x of its measured forward");
    } else {
        println!(
            "  latency calibration : {} CALIBRATION BUG(S) — priced latency >10x off the measured forward:",
            calibration_bugs.len()
        );
        for bug in &calibration_bugs {
            println!("    {bug}");
        }
    }

    let det = audit_determinism();
    println!(
        "  determinism audit   : {} registered kernels, {}",
        det.kernels.len(),
        if det.is_ok() { "all order-fixed" } else { "VIOLATIONS" }
    );
    for f in &det.findings {
        inconsistencies.push(f.to_string());
    }

    if inconsistencies.is_empty() {
        println!("OK: static verdicts agree with the runtime on every candidate.");
        ExitCode::SUCCESS
    } else {
        eprintln!("{} inconsistencies:", inconsistencies.len());
        for m in &inconsistencies {
            eprintln!("  {m}");
        }
        ExitCode::FAILURE
    }
}

/// Render one candidate table row: genotype, verdict, and (when priced)
/// total MFLOPs, plan-faithful peak KB, and predicted forward latency.
fn table_row(
    genotype: &Genotype,
    backbone: &[usize],
    report: &VerifyReport,
    cost: Option<&CostReport>,
    latency: &LatencyModel,
) -> String {
    let name = format!(
        "{} bb{backbone:?}",
        genotype.blocks[0]
            .edges
            .iter()
            .map(|(_, _, op)| op.label())
            .collect::<Vec<_>>()
            .join("/")
    );
    match cost {
        Some(c) => format!(
            "{:<40} {:>8} {:>10.3} {:>10.1} {:>10.1}",
            name,
            "ok",
            c.total.flops as f64 / 1e6,
            c.peak_bytes as f64 / 1e3,
            c.predicted_ns(latency) / 1e3,
        ),
        None => {
            let verdict = report
                .errors()
                .next()
                .map_or("ok", |f| kind_name(f.kind));
            format!("{name:<40} {verdict:>8} {:>10} {:>10} {:>10}", "-", "-", "-")
        }
    }
}

/// Build the model, run one forward/backward step, and cross-check the
/// analyzer's edge-liveness verdict against the tape and the gradients.
/// For accepted candidates, returns the measured compiled-plan forward
/// time in ns (best of 3) for the latency-calibration cross-check.
#[allow(clippy::too_many_arguments)]
fn smoke_candidate(
    cfg: &SearchConfig,
    genotype: &Genotype,
    spec: &DatasetSpec,
    data: &cts_data::CtsData,
    train_batches: &[(cts_tensor::Tensor, cts_tensor::Tensor)],
    scaler: &Scaler,
    report: &VerifyReport,
    seed: u64,
) -> Result<Option<f64>, String> {
    let result = catch_unwind(AssertUnwindSafe(|| {
        let mut rng = SmallRng::seed_from_u64(seed);
        let model = DerivedModel::new(&mut rng, cfg, genotype, spec, &data.graph, scaler);
        let (x, y) = &train_batches[0];
        let tape = Tape::new();
        let xv = tape.constant(x.clone());
        let pred = model.forward(&tape, &xv);
        let loss = LossKind::MaskedMae { null_value: spec.null_value }.compute(&tape, &pred, y);
        let reachable = tape.reachable_params(&loss);
        tape.backward(&loss);

        let params = model.parameters();
        let mut problems = Vec::new();
        let mut measured_ns = None;
        // Accepted candidates must also compile to a tape-free plan whose
        // forward is bit-identical to the tape forward (epsilon 0).
        if report.is_ok() {
            match model.compiled_plan().map_err(|e| e.to_string()).and_then(
                |plan| plan.try_run(x).map_err(|e| e.to_string()).map(|out| (plan, out)),
            ) {
                Ok((plan, compiled)) => {
                    let tape_out = pred.value();
                    if compiled.shape() != tape_out.shape() {
                        problems.push(format!(
                            "compiled shape {:?} != tape shape {:?}",
                            compiled.shape(),
                            tape_out.shape()
                        ));
                    } else if let Some(i) = compiled
                        .data()
                        .iter()
                        .zip(tape_out.data().iter())
                        .position(|(a, b)| a.to_bits() != b.to_bits())
                    {
                        problems.push(format!(
                            "compiled forward diverges from tape at scalar {i}: {} vs {}",
                            compiled.data()[i],
                            tape_out.data()[i]
                        ));
                    } else {
                        // Warm plan: time the forward, best of 3.
                        let mut best = f64::INFINITY;
                        for _ in 0..3 {
                            let t0 = Stopwatch::start();
                            let _ = plan.try_run(x);
                            best = best.min(t0.elapsed_secs() * 1e9);
                        }
                        measured_ns = Some(best);
                    }
                }
                Err(e) => problems.push(format!("accepted candidate failed to compile/run: {e}")),
            }
        }
        for (i, block) in genotype.blocks.iter().enumerate() {
            for (k, (_, _, op)) in block.edges.iter().enumerate() {
                if !op.is_parametric() {
                    continue;
                }
                let prefix = format!("block{i}.e{k}.");
                let edge_params: Vec<_> = params
                    .iter()
                    .filter(|p| p.name().starts_with(&prefix))
                    .collect();
                if edge_params.is_empty() {
                    problems.push(format!("no parameters found under {prefix}"));
                    continue;
                }
                let static_live = report.edge_liveness[i][k];
                let tape_live = edge_params
                    .iter()
                    .any(|p| reachable.iter().any(|q| q.ptr_eq(p)));
                if static_live != tape_live {
                    problems.push(format!(
                        "{prefix} static liveness {static_live} but tape reachability {tape_live}"
                    ));
                }
                if !static_live {
                    for p in &edge_params {
                        let g = p.grad().norm();
                        if g != 0.0 {
                            problems.push(format!(
                                "{} declared starved but has gradient norm {g}",
                                p.name()
                            ));
                        }
                    }
                }
            }
        }
        (problems, measured_ns)
    }));
    match result {
        Ok((problems, measured_ns)) if problems.is_empty() => Ok(measured_ns),
        Ok((problems, _)) => Err(problems.join("; ")),
        Err(_) => Err("panicked during smoke training".into()),
    }
}

fn kind_name(kind: FindingKind) -> &'static str {
    match kind {
        FindingKind::MalformedBlock => "malformed block",
        FindingKind::DanglingNode => "dangling node",
        FindingKind::BadBackbone => "bad backbone",
        FindingKind::RankError => "rank error",
        FindingKind::ChannelMismatch => "channel mismatch",
        FindingKind::NodeCountMismatch => "node-count mismatch",
        FindingKind::BroadcastMismatch => "broadcast mismatch",
        FindingKind::RoundTrip => "round-trip",
        FindingKind::AllZeroInput => "all-zero input",
        FindingKind::StarvedParam => "starved parameter",
        FindingKind::DeadNode => "dead node",
        FindingKind::NonDeterministicKernel => "non-deterministic kernel",
        FindingKind::OverBudget => "over budget",
    }
}
