//! `autocts-repro`: workspace umbrella crate hosting the runnable examples
//! (`examples/`) and cross-crate integration tests (`tests/`).
//!
//! The re-exports below give examples a single import surface.
#![forbid(unsafe_code)]


pub use autocts;
pub use cts_baselines as baselines;
pub use cts_data as data;
pub use cts_graph as graph;
pub use cts_nn as nn;
pub use cts_ops as st_ops;
pub use cts_tensor as tensor;
pub use cts_verify as verify;
