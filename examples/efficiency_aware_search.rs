//! Efficiency-aware architecture search — the paper's §6 future-work item,
//! implemented as a differentiable operator-cost penalty on the
//! architecture objective: `L_val(Θ) + λ · E[operator cost](α)`.
//!
//! Sweeps λ and shows the accuracy/cost trade-off: larger penalties push
//! the search toward cheaper operators (identity/convolutions) at some
//! accuracy loss.
//!
//! ```sh
//! cargo run --release --example efficiency_aware_search
//! ```

use autocts::{AutoCts, SearchConfig};
use cts_data::{build_windows, generate, DatasetSpec};
use cts_ops::OpKind;

fn genotype_cost(genotype: &autocts::Genotype) -> f32 {
    genotype
        .op_histogram()
        .iter()
        .map(|(op, count)| op.relative_cost() * *count as f32)
        .sum()
}

fn main() {
    let spec = DatasetSpec::metr_la().scaled(14.0 / 207.0, 1000.0 / 34_272.0);
    let data = generate(&spec, 8);
    let windows = build_windows(&data, 4, 40);

    println!(
        "{:<10} {:>10} {:>12} {:>10}  operators",
        "lambda", "test MAE", "arch cost", "search s"
    );
    for lambda in [0.0f32, 1.0, 10.0, 50.0] {
        let cfg = SearchConfig {
            m: 4,
            b: 2,
            epochs: 3,
            ..SearchConfig::default()
        }
        .with_cost_penalty(lambda);
        let auto = AutoCts::new(cfg);
        let outcome = auto.search(&spec, &data.graph, &windows);
        let report = auto.evaluate(&outcome.genotype, &spec, &data.graph, &windows, 8);
        let hist: Vec<String> = outcome
            .genotype
            .op_histogram()
            .iter()
            .map(|(op, c)| format!("{op}x{c}"))
            .collect();
        println!(
            "{:<10} {:>10.3} {:>12.1} {:>10.1}  {}",
            lambda,
            report.overall.mae,
            genotype_cost(&outcome.genotype),
            outcome.stats.secs,
            hist.join(" ")
        );
    }
    println!(
        "\n(relative op costs: identity {:.2}, conv1d {:.2}, gdcc {:.2}, inf {:.2}, dgcn {:.2})",
        OpKind::Identity.relative_cost(),
        OpKind::Conv1d.relative_cost(),
        OpKind::Gdcc.relative_cost(),
        OpKind::InformerT.relative_cost(),
        OpKind::Dgcn.relative_cost()
    );
}
