//! Multi-step traffic forecasting: AutoCTS head-to-head with two strong
//! human-designed baselines (Graph WaveNet and MTGNN) on PEMS08-like
//! traffic-flow data — a miniature of the paper's Table 6.
//!
//! ```sh
//! cargo run --release --example traffic_forecasting
//! ```

use autocts::eval::train_and_evaluate;
use autocts::{AutoCts, SearchConfig};
use cts_baselines::{BaselineConfig, GraphWaveNet, Mtgnn};
use cts_data::{build_windows, generate, DatasetSpec};
use cts_nn::{Forecaster, LossKind, TrainConfig};

fn main() {
    let spec = DatasetSpec::pems08().scaled(16.0 / 170.0, 1200.0 / 17_856.0);
    println!(
        "dataset: {}-like traffic flow (N={}, T={}, 12-step -> 12-step)",
        spec.name, spec.n, spec.t
    );
    let data = generate(&spec, 7);
    let windows = build_windows(&data, 4, 48);

    let train_cfg = TrainConfig {
        epochs: 10,
        loss: LossKind::MaskedMae { null_value: Some(0.0) },
        ..TrainConfig::default()
    };
    let bcfg = BaselineConfig::default();

    println!("\n{:<16} {:>8} {:>8} {:>8}", "model", "MAE", "RMSE", "MAPE%");
    for (name, model) in [
        (
            "Graph WaveNet",
            Box::new(GraphWaveNet::new(&bcfg, &spec, &data.graph, &windows.scaler))
                as Box<dyn Forecaster>,
        ),
        (
            "MTGNN",
            Box::new(Mtgnn::new(&bcfg, &spec, &data.graph, &windows.scaler)),
        ),
    ] {
        let report = train_and_evaluate(model.as_ref(), &spec, &windows, &train_cfg, 8)
            .unwrap_or_else(|e| panic!("{name} training failed: {e}"));
        println!(
            "{:<16} {:>8.3} {:>8.3} {:>8.2}",
            name,
            report.overall.mae,
            report.overall.rmse,
            report.overall.mape * 100.0
        );
    }

    let auto = AutoCts::new(SearchConfig { epochs: 3, ..SearchConfig::default() });
    let outcome = auto.search(&spec, &data.graph, &windows);
    let report = auto.evaluate(&outcome.genotype, &spec, &data.graph, &windows, 10);
    println!(
        "{:<16} {:>8.3} {:>8.3} {:>8.2}   (searched in {:.0}s)",
        "AutoCTS",
        report.overall.mae,
        report.overall.rmse,
        report.overall.mape * 100.0,
        outcome.stats.secs
    );
    println!("\nAutoCTS backbone topology: {:?}", outcome.genotype.backbone);
    println!("operator usage: {:?}", outcome.genotype.op_histogram());
}
