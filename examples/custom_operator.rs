//! Extending the search space with a brand-new operator — the workflow
//! the paper motivates in §1 ("whenever a new S/T-operator is designed,
//! it can be easily included in the search space").
//!
//! We restrict the operator set (as a user could do to trade accuracy for
//! search speed) and compare the restricted search against the compact
//! default on the same data.
//!
//! ```sh
//! cargo run --release --example custom_operator
//! ```

use autocts::{AutoCts, SearchConfig};
use cts_data::{build_windows, generate, DatasetSpec};
use cts_ops::OpKind;

fn main() {
    let spec = DatasetSpec::metr_la().scaled(14.0 / 207.0, 1000.0 / 34_272.0);
    let data = generate(&spec, 5);
    let windows = build_windows(&data, 4, 40);

    // A user-chosen operator set: CNN-only temporal modelling plus both
    // GCN variants spatially (e.g. to avoid attention on tiny hardware).
    let custom_set = vec![
        OpKind::Zero,
        OpKind::Identity,
        OpKind::Conv1d,
        OpKind::Gdcc,
        OpKind::ChebGcn,
        OpKind::Dgcn,
    ];

    for (label, op_set) in [
        ("compact set (paper)", cts_ops::compact_set()),
        ("custom CNN+GCN set", custom_set),
    ] {
        let cfg = SearchConfig {
            op_set,
            epochs: 2,
            ..SearchConfig::default()
        };
        println!(
            "\n[{label}] |O| = {}, micro space = {:.1e} ST-blocks per block",
            cfg.op_set.len(),
            cfg.micro_space_size()
        );
        let auto = AutoCts::new(cfg);
        let outcome = auto.search(&spec, &data.graph, &windows);
        let report = auto.evaluate(&outcome.genotype, &spec, &data.graph, &windows, 8);
        println!(
            "  searched in {:.0}s; test MAE {:.3}; operators used: {:?}",
            outcome.stats.secs,
            report.overall.mae,
            outcome
                .genotype
                .op_histogram()
                .iter()
                .map(|(op, c)| format!("{op}x{c}"))
                .collect::<Vec<_>>()
        );
    }
}
