//! Architecture transfer (the paper's Table 35): search once on one
//! dataset, serialise the genotype, and retrain it on different datasets —
//! the workflow a practitioner uses to amortise search cost.
//!
//! ```sh
//! cargo run --release --example transfer_learning
//! ```

use autocts::{AutoCts, Genotype, SearchConfig};
use cts_data::{build_windows, generate, DatasetSpec};

fn main() {
    let cfg = SearchConfig { epochs: 2, ..SearchConfig::default() };
    let auto = AutoCts::new(cfg);

    // 1. search on PEMS03-like data (the paper's donor dataset)
    let donor_spec = DatasetSpec::pems03().scaled(14.0 / 358.0, 900.0 / 26_208.0);
    let donor = generate(&donor_spec, 13);
    let donor_windows = build_windows(&donor, 4, 32);
    let outcome = auto.search(&donor_spec, &donor.graph, &donor_windows);
    let genotype_text = outcome.genotype.to_text();
    println!(
        "searched on {} in {:.0}s; genotype:\n  {}\n",
        donor_spec.name, outcome.stats.secs, genotype_text
    );

    // 2. ship the text-serialised genotype to other datasets
    let transferred = Genotype::from_text(&genotype_text).expect("round-trip");
    for target in [
        DatasetSpec::metr_la().scaled(14.0 / 207.0, 900.0 / 34_272.0),
        DatasetSpec::pems_bay().scaled(14.0 / 325.0, 900.0 / 52_116.0),
    ] {
        let data = generate(&target, 14);
        let windows = build_windows(&data, 4, 32);
        // transferred architecture, retrained on the target
        let report = auto.evaluate(&transferred, &target, &data.graph, &windows, 8);
        // natively searched architecture for comparison
        let native_outcome = auto.search(&target, &data.graph, &windows);
        let native = auto.evaluate(&native_outcome.genotype, &target, &data.graph, &windows, 8);
        println!(
            "{:<10}  transferred MAE {:.3} | natively searched MAE {:.3}",
            target.name, report.overall.mae, native.overall.mae
        );
    }
    println!("\n(the paper's finding: transferred is competitive, native slightly better)");
}
