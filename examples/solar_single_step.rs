//! Single-step forecasting on Solar-Energy-like data (168-step history,
//! horizon 3) — the setting of the paper's Table 8, reporting RRSE/CORR.
//!
//! Demonstrates AutoCTS on a dataset *without* a predefined adjacency:
//! the DGCN operators fall back to a learned adaptive adjacency.
//!
//! ```sh
//! cargo run --release --example solar_single_step
//! ```

use autocts::eval::train_and_evaluate;
use autocts::{AutoCts, SearchConfig};
use cts_baselines::{BaselineConfig, LstNet};
use cts_data::{build_windows, generate, DatasetSpec};
use cts_nn::{LossKind, TrainConfig};

fn main() {
    let spec = DatasetSpec::solar_energy(3).scaled(12.0 / 137.0, 1200.0 / 52_560.0);
    println!(
        "dataset: {}-like PV production (N={}, T={}, {} steps/day), horizon 3",
        spec.name, spec.n, spec.t, spec.steps_per_day
    );
    let data = generate(&spec, 11);
    assert_eq!(data.graph.edge_count(), 0, "solar has no predefined graph");
    let windows = build_windows(&data, 12, 24);

    // LSTNet: no explicit spatial modelling.
    let lstnet = LstNet::new(&BaselineConfig::default(), &spec, &data.graph, &windows.scaler);
    let cfg = TrainConfig {
        epochs: 10,
        loss: LossKind::Mse,
        ..TrainConfig::default()
    };
    let report = train_and_evaluate(&lstnet, &spec, &windows, &cfg, 4).expect("LSTNet training failed");
    println!(
        "LSTNet : RRSE {:.4}  CORR {:.4}",
        report.overall.rrse, report.overall.corr
    );

    // AutoCTS with an adaptive adjacency learned from the series alone.
    let auto = AutoCts::new(SearchConfig { epochs: 2, ..SearchConfig::default() });
    let outcome = auto.search(&spec, &data.graph, &windows);
    let report = auto.evaluate(&outcome.genotype, &spec, &data.graph, &windows, 8);
    println!(
        "AutoCTS: RRSE {:.4}  CORR {:.4}   (searched in {:.0}s)",
        report.overall.rrse, report.overall.corr, outcome.stats.secs
    );
    println!("\ndiscovered architecture:\n{}", outcome.genotype);
}
