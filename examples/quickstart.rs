//! Quickstart: search an architecture on a small traffic dataset, inspect
//! it, retrain it from scratch, and evaluate against a naive baseline.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use autocts::{AutoCts, SearchConfig};
use cts_data::{build_windows, generate, DatasetSpec};
use cts_nn::CheckpointConfig;

fn main() {
    // 1. A METR-LA-like dataset at laptop scale: 16 sensors, ~1200 steps
    //    of 5-minute speeds over a random road graph.
    let spec = DatasetSpec::metr_la().scaled(16.0 / 207.0, 1200.0 / 34_272.0);
    println!("dataset: {} (N={}, T={})", spec.name, spec.n, spec.t);
    let data = generate(&spec, 42);
    let windows = build_windows(&data, 4, 48);
    println!(
        "windows: {} train / {} val / {} test",
        windows.train.len(),
        windows.val.len(),
        windows.test.len()
    );

    // 2. Joint micro + macro architecture search (Algorithm 1).
    //    Set CTS_CHECKPOINT=/path/to/file to make the search crash-safe:
    //    state is persisted every epoch and a killed run resumes
    //    bit-identically from the file on the next invocation.
    let mut config = SearchConfig {
        epochs: 3,
        ..SearchConfig::default()
    };
    if let Ok(path) = std::env::var("CTS_CHECKPOINT") {
        println!("checkpointing to {path} (delete the file to restart fresh)");
        config = config.with_checkpoint(CheckpointConfig::new(path));
    }
    println!(
        "searching {} candidate ST-block architectures per block ...",
        config.micro_space_size()
    );
    let auto = AutoCts::new(config);
    let outcome = auto.search(&spec, &data.graph, &windows);
    println!(
        "search finished in {:.1}s ({} bi-level steps, ~{:.0} MB peak)",
        outcome.stats.secs, outcome.stats.steps, outcome.stats.memory_mb
    );
    println!("\ndiscovered architecture:\n{}", outcome.genotype);

    // 3. Architecture evaluation: retrain from scratch, report test MAE.
    let report = auto.evaluate(&outcome.genotype, &spec, &data.graph, &windows, 10);
    println!(
        "test: MAE {:.3}  RMSE {:.3}  MAPE {:.2}%  ({} parameters)",
        report.overall.mae,
        report.overall.rmse,
        report.overall.mape * 100.0,
        report.parameters
    );

    // 4. Sanity reference: the predict-the-training-mean baseline.
    let mean = windows.scaler.target_mean();
    let mut err = 0.0f64;
    let mut count = 0.0f64;
    for w in &windows.test {
        for &t in w.y.data() {
            if t != 0.0 {
                err += (t - mean).abs() as f64;
                count += 1.0;
            }
        }
    }
    println!("naive predict-the-mean MAE: {:.3}", err / count);
}
