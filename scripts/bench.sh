#!/usr/bin/env bash
# Emit machine-readable benchmark JSON at the repo root:
#   BENCH_ops.json          per-kernel ns/iter + allocs across threads/dispatch
#   BENCH_search_step.json  bi-level search-step cost, pool vs spawn, arena on/off
#
# Usage: scripts/bench.sh
# Output dir override: BENCH_OUT_DIR=/tmp scripts/bench.sh
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline -p cts-bench --bin bench_json
./target/release/bench_json "$@"
