#!/usr/bin/env bash
# Emit machine-readable benchmark JSON at the repo root:
#   BENCH_ops.json          per-kernel ns/iter + allocs across threads/dispatch
#   BENCH_search_step.json  bi-level search-step cost, pool vs spawn, arena on/off
#   BENCH_obs.json          observability smoke run: per-kernel time shares,
#                           phase breakdown, arena/pool/tape counters
#   BENCH_serve.json        serving latency: one row per SERVE_THREADS entry
#                           (p50/p99 flush, compiled-vs-tape ms/window +
#                           speedup, result-cache hit/miss/evict deltas)
#   BENCH_cost.json         static cost model audit: per-family predicted
#                           vs measured flops/bytes (exactness booleans)
#                           and latency ratios under both calibrations
#   cts_run.jsonl           the raw structured run log behind BENCH_obs.json
#
# Usage: scripts/bench.sh
# Output dir override: BENCH_OUT_DIR=/tmp scripts/bench.sh
set -euo pipefail
cd "$(dirname "$0")/.."

out="${BENCH_OUT_DIR:-.}"

cargo build --release --offline -p cts-bench --bin bench_json --bin obs_smoke --bin bench_cost
cargo build --release --offline -p cts-obs --bin report
./target/release/bench_json "$@"

CTS_RUN_LOG="$out/cts_run.jsonl" ./target/release/obs_smoke
./target/release/report "$out/cts_run.jsonl" --out "$out/BENCH_obs.json"

cargo build --release --offline -p cts-serve
SERVE_THREADS="${SERVE_THREADS:-1,4}" SERVE_CACHE_MB="${SERVE_CACHE_MB:-8}" \
    BENCH_OUT_DIR="$out" ./target/release/serve_bench

BENCH_OUT_DIR="$out" ./target/release/bench_cost
