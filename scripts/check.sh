#!/usr/bin/env bash
# Full local gate: release build, tests, fault-injection, and lint —
# everything offline.
#
# The workspace has no registry access; all third-party deps resolve to the
# API-compatible shims in compat/, so --offline must always succeed.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> source lint (unwrap/expect, unsafe, checkpoint casts)"
bash scripts/lint_forbidden.sh

echo "==> no ignored recovery tests"
# The fault-tolerance suites must always run: an #[ignore] on any of them
# would let a broken resume/watchdog path slip through the gate.
if grep -n '#\[ignore' tests/fault_injection.rs tests/serve_fault.rs crates/nn/tests/run_state.rs 2>/dev/null; then
  echo "error: recovery tests must not be #[ignore]d" >&2
  exit 1
fi

echo "==> cargo build --release"
cargo build --release --offline

echo "==> static analyzer sweep over the discrete space"
# verify-space cross-checks every cts-verify verdict against the runtime
# (smoke training, tape reachability, gradient norms); any false
# positive/negative exits non-zero.
./target/release/verify_space

echo "==> static cost model gate"
# bench_cost prices every operator family statically and re-counts it
# under the kernel meter: flops/bytes must match bit for bit, the
# row-fitted latency model must land inside a 3x band on every family,
# and the compiled-in LatencyModel::default() coefficients must sit
# within 3x of the refit — a kernel-speed change (e.g. new SIMD paths)
# that is not re-calibrated into the defaults fails here.
BENCH_OUT_DIR=target ./target/release/bench_cost --gate

echo "==> cargo test -q (workspace)"
cargo test -q --workspace --offline

echo "==> cargo test -q (workspace, CTS_SIMD=off)"
# The SIMD determinism contract: the scalar fallback is not a degraded
# mode but the semantics. The entire suite must pass with the vector
# paths disabled, and the proptests in parallel_consistency.rs separately
# pin vector and scalar outputs to identical bits.
CTS_SIMD=off cargo test -q --workspace --offline

echo "==> fault-injection suite (explicit)"
cargo test --offline --test fault_injection -- --nocapture
cargo test --offline -p cts-nn --test run_state

echo "==> serving chaos suite"
# The request path must degrade, never panic: typed errors, batch
# isolation under injected faults, oversize splitting under the cap,
# canary-gate rollback, and the packing proptests (tests/serve_fault.rs).
cargo test --offline --test serve_fault

echo "==> compiled-plan parity gate"
# The tape-free ExecPlan forward must stay bit-identical to the tape
# forward (randomized genotypes/batch sizes, live-weight tracking) and
# allocate nothing at steady state (tests/compiled_parity.rs).
cargo test --offline --test compiled_parity

echo "==> allocation-regression gate"
# A steady-state supernet train step must stay within the pinned
# system-allocator budget (tests/alloc_budget.rs); catches per-step Vec
# churn or arena bypasses creeping back into the hot path.
cargo test --offline --test alloc_budget

echo "==> observability gate"
# Metrics collection must be a pure observer: bit-identical genotype and
# per-epoch trace with CTS_METRICS on/off, and the JSONL run log must
# summarize (tests/observability.rs).
cargo test --offline --test observability

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "All checks passed."
