#!/usr/bin/env bash
# Full local gate: release build, tests, and lint — everything offline.
#
# The workspace has no registry access; all third-party deps resolve to the
# API-compatible shims in compat/, so --offline must always succeed.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo test -q (workspace)"
cargo test -q --workspace --offline

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "All checks passed."
