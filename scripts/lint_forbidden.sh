#!/usr/bin/env bash
# Source lint gate (runs offline, no cargo needed).
#
# Rules, applied to library sources (`crates/*/src`, `compat/*/src`, `src`)
# outside test code (per file, scanning stops at the first `#[cfg(test)]`;
# `*_tests.rs` files are skipped entirely):
#
#   1. `.unwrap()` / `.expect(` must carry a `// invariant:` comment on the
#      same line or within the 3 preceding lines explaining why the value
#      cannot be absent.
#   2. `unsafe` must carry a `// SAFETY:` comment in the same window (the
#      workspace currently forbids unsafe everywhere; this guards future
#      exceptions).
#   3. In the checkpoint reader (`crates/nn/src/checkpoint.rs`), narrowing
#      `as u16|u32|usize` casts must carry a `// invariant:` comment; length
#      fields there must use checked conversions instead.
#   4. `std::time::Instant` is forbidden outside `crates/obs/src` and
#      `crates/bench/src` (and the vendored compat shims): product crates
#      must read wall-clock through `cts_obs::{timer, Stopwatch}` so the
#      metrics-off path stays free of clock syscalls.
#   5. `cts_autograd` (the tape) must never be referenced inside
#      `crates/runtime/src`: compiled plans are tape-free by construction,
#      and the parity guarantee depends on the runtime never re-entering
#      autograd.
#   6. The serving request path (`crates/runtime/src`, `crates/serve/src`)
#      must never panic on request data: `assert!`/`assert_eq!`/
#      `assert_ne!`/`debug_assert*`/`panic!`/`.unwrap()` are forbidden
#      there — failures must surface as typed `ServeError`s. Annotated
#      `.expect(` with `// invariant:` stays allowed (rule 1) for
#      conditions the code itself makes impossible — EXCEPT on channel
#      results: a `.send(`/`.recv(`/`.try_recv(`/`.recv_timeout(` result
#      must map to `ServeError::ShardDown`/`FrontClosed`, never be
#      unwrapped or expected (a worker dying is an operational event,
#      not an invariant the sender controls).
#   7. The cost model (`crates/verify/src/cost.rs`) and the plan compiler
#      (`crates/runtime/src/plan.rs`) size buffers in u64/usize; bare
#      ` * ` / ` + ` there must be `checked_*`/`saturating_*` instead —
#      an overflow in a size computation silently prices a genotype
#      wrong. Float lines are exempt when marked `f32`/`f64` on the
#      line (comment counts).
#   8. Inside `crates/tensor/src`, `unsafe` may appear only in the two
#      opt-out modules: `pool.rs` (lifetime-erased task pointers) and
#      `simd.rs` (core::arch intrinsics). Everywhere else in the crate
#      the `#![deny(unsafe_code)]` at lib.rs must stay load-bearing —
#      a vectorized kernel belongs in the simd module, not inline.
#      (Rule 2 still requires a `// SAFETY:` comment at every use.)
#
# Exits non-zero with a `file:line` listing on any finding.
set -euo pipefail
cd "$(dirname "$0")/.."

findings=$(mktemp)
trap 'rm -f "$findings"' EXIT

while IFS= read -r f; do
    awk -v look=3 '
        /^[[:space:]]*#\[cfg\(test\)\]/ { exit }
        {
            hist[NR] = $0
            ok_inv = 0; ok_safety = 0
            for (i = NR; i >= NR - look && i >= 1; i--) {
                if (hist[i] ~ /\/\/ invariant:/) ok_inv = 1
                if (hist[i] ~ /\/\/ SAFETY:/) ok_safety = 1
            }
            line = $0
            sub(/\/\/.*/, "", line)  # comment text never triggers a rule
            if (line ~ /\.unwrap\(\)|\.expect\(/ && !ok_inv)
                printf "%s:%d: unannotated unwrap/expect (add // invariant:)\n", FILENAME, NR
            if (line ~ /(^|[^a-zA-Z_])unsafe([^a-zA-Z_]|$)/ && !ok_safety)
                printf "%s:%d: unsafe without // SAFETY: comment\n", FILENAME, NR
            if (FILENAME ~ /crates\/nn\/src\/checkpoint\.rs$/ \
                && line ~ / as (u16|u32|usize)([^0-9_a-zA-Z]|$)/ && !ok_inv)
                printf "%s:%d: unchecked narrowing cast in checkpoint reader\n", FILENAME, NR
            if (FILENAME !~ /^crates\/(obs|bench)\/src\// && FILENAME !~ /^compat\// \
                && line ~ /(^|[^a-zA-Z_])Instant([^a-zA-Z_]|$)/)
                printf "%s:%d: Instant outside cts-obs/cts-bench (use cts_obs timers)\n", FILENAME, NR
            if (FILENAME ~ /^crates\/runtime\/src\// && line ~ /cts_autograd/)
                printf "%s:%d: cts_autograd referenced inside cts-runtime (plans are tape-free)\n", FILENAME, NR
            if ((FILENAME ~ /crates\/verify\/src\/cost\.rs$/ || FILENAME ~ /crates\/runtime\/src\/plan\.rs$/) \
                && $0 !~ /f32|f64/ && line ~ / \* | \+ /)
                printf "%s:%d: bare size arithmetic in cost model (use checked_/saturating_, or mark f64)\n", FILENAME, NR
            if (FILENAME ~ /^crates\/(runtime|serve)\/src\// \
                && line ~ /(^|[^a-zA-Z_!])(assert|assert_eq|assert_ne|debug_assert|debug_assert_eq|debug_assert_ne|panic)!|\.unwrap\(\)/)
                printf "%s:%d: panic path in serving code (return a typed ServeError)\n", FILENAME, NR
            if (FILENAME ~ /^crates\/(runtime|serve)\/src\// \
                && line ~ /\.(send|recv|try_recv|recv_timeout)\(/ \
                && line ~ /\.unwrap\(\)|\.expect\(/)
                printf "%s:%d: channel result unwrapped in serving code (map to ServeError::ShardDown/FrontClosed)\n", FILENAME, NR
            if (FILENAME ~ /^crates\/tensor\/src\// && FILENAME !~ /crates\/tensor\/src\/(pool|simd)\.rs$/ \
                && line ~ /(^|[^a-zA-Z_])unsafe([^a-zA-Z_]|$)/)
                printf "%s:%d: unsafe in cts-tensor outside pool.rs/simd.rs (move the intrinsics into the simd module)\n", FILENAME, NR
        }
    ' "$f" >>"$findings"
done < <(find crates/*/src compat/*/src src -name '*.rs' ! -name '*_tests.rs' | sort)

if [[ -s "$findings" ]]; then
    echo "lint_forbidden: $(wc -l <"$findings") finding(s):" >&2
    cat "$findings" >&2
    exit 1
fi
echo "lint_forbidden: clean"
