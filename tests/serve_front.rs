//! Integration suite for the concurrent serving front-end.
//!
//! Exercises the properties the front-end exists to provide:
//!
//! 1. **Replica parity** — forecasts served by worker-thread plan
//!    replicas are bit-identical to a main-thread replica built from the
//!    same seed, and answers come back in ticket order.
//! 2. **Exact caching** — a repeated window is answered from the result
//!    cache bit-identically to a fresh `try_run`, expires once the window
//!    origin advances past the forecast horizon, and is LRU-evicted under
//!    the byte cap.
//! 3. **Multi-model routing** — requests route by model id through each
//!    shard's registry; unknown ids get a typed error, not a panic.
//! 4. **Per-shard degradation** — the PR-7 ladder (quarantine, solo
//!    retries, tape fallback) works unchanged *inside a worker thread*,
//!    with faults armed thread-locally by the shard factory.
//! 5. **Typed init failure** — a factory that fails, panics, or fails its
//!    canary tears the front down with a typed error instead of hanging.

mod common;

use common::{bitwise_eq, fixture, tape_forward};
use cts_nn::fault;
use cts_obs::serve as counters;
use cts_runtime::{
    FrontConfig, ServeError, ServeFront, ShardCanary, ShardFactory, ShardModel,
};
use cts_tensor::Tensor;
use std::sync::{Arc, Mutex};

/// Serializes the tests: the serve counters are process-global.
static GATE: Mutex<()> = Mutex::new(());

/// Factory serving one model id `"m"` from the given fixture seed.
fn single_model_factory(seed: u64) -> ShardFactory {
    Arc::new(move |_shard| {
        let (_model, plan, _pool) = fixture(seed);
        Ok(vec![ShardModel {
            id: "m".into(),
            plan,
            tape_fallback: None,
            canary: None,
        }])
    })
}

#[test]
fn worker_replicas_answer_bit_identically_in_ticket_order() {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    let (_model, local, pool) = fixture(20);
    let cfg = FrontConfig {
        threads: 3,
        max_batch: 4,
        ..FrontConfig::default()
    };
    let mut front = ServeFront::new(cfg, single_model_factory(20)).expect("front starts");
    counters::reset();
    let tickets: Vec<u64> = pool
        .iter()
        .map(|x| front.submit("m", x.clone()).expect("submit"))
        .collect();
    let out = front.flush().expect("flush");
    assert_eq!(out.len(), pool.len());
    let got: Vec<u64> = out.iter().map(|(t, _)| *t).collect();
    assert_eq!(got, tickets, "answers not in ticket order");
    for (i, ((_, result), x)) in out.iter().zip(&pool).enumerate() {
        let y = result
            .as_ref()
            .unwrap_or_else(|e| panic!("request {i} failed: {e}"));
        let reference = local.try_run(x).expect("local reference");
        assert!(
            bitwise_eq(y, &reference),
            "request {i} drifted from the main-thread replica"
        );
    }
    // Shard depth gauges saw the traffic and drained back to zero.
    let rows = counters::shard_rows();
    assert!(!rows.is_empty(), "no shard recorded queue depth");
    assert!(rows.iter().all(|&(_, depth, peak)| depth == 0 && peak >= 1));
    let snap = counters::snapshot();
    assert_eq!(snap.submitted, pool.len() as u64);
    assert_eq!(snap.admitted, pool.len() as u64);
    assert_eq!(snap.failed_requests, 0);
}

#[test]
fn cache_hits_are_bit_identical_expire_past_horizon_and_evict_under_cap() {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    let (_model, local, pool) = fixture(21);
    let w0 = pool[0].clone();
    let w1 = pool[1].clone();
    let fresh0 = local.try_run(&w0).expect("reference");
    let q = local.horizon() as u64;
    // Cap sized so exactly one entry fits: input bits + output bits.
    let entry_bytes = (w0.len() + fresh0.len()) * 4;
    let cfg = FrontConfig {
        threads: 1,
        cache_bytes: entry_bytes + 16,
        ..FrontConfig::default()
    };
    let mut front = ServeFront::new(cfg, single_model_factory(21)).expect("front starts");
    counters::reset();

    // Miss, then hit: the hit is bit-identical to a fresh try_run.
    front.submit_with("m", w0.clone(), None, 1).expect("submit");
    let out = front.flush().expect("flush");
    assert!(bitwise_eq(out[0].1.as_ref().expect("first answer"), &fresh0));
    front.submit_with("m", w0.clone(), None, 1).expect("submit");
    let out = front.flush().expect("flush");
    assert!(
        bitwise_eq(out[0].1.as_ref().expect("cached answer"), &fresh0),
        "cache hit is not bit-identical to a fresh run"
    );
    let snap = counters::snapshot();
    assert_eq!(snap.cache_hit, 1);
    assert_eq!(snap.cache_miss, 1);
    // A cache hit is still an admitted request — conservation holds.
    assert_eq!(snap.submitted, snap.admitted);

    // Horizon TTL: once the window origin advances past the forecast
    // horizon Q, the entry has expired and the same window misses.
    front
        .submit_with("m", w0.clone(), None, 1 + q)
        .expect("submit");
    let out = front.flush().expect("flush");
    assert!(bitwise_eq(out[0].1.as_ref().expect("recomputed"), &fresh0));
    let snap = counters::snapshot();
    assert_eq!(snap.cache_expired, 1, "TTL did not expire the entry");
    assert_eq!(snap.cache_hit, 1, "expired entry still answered");

    // Byte cap: inserting a second window evicts the LRU first one.
    front
        .submit_with("m", w1.clone(), None, 1 + q)
        .expect("submit");
    let _ = front.flush().expect("flush");
    assert_eq!(counters::snapshot().cache_evict, 1, "byte cap did not evict");
}

#[test]
fn requests_route_by_model_id_and_unknown_ids_get_typed_errors() {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    let factory: ShardFactory = Arc::new(|_shard| {
        let (_ma, plan_a, _) = fixture(22);
        let (_mb, plan_b, _) = fixture(23);
        Ok(vec![
            ShardModel {
                id: "autocts-a".into(),
                plan: plan_a,
                tape_fallback: None,
                canary: None,
            },
            ShardModel {
                id: "autocts-b".into(),
                plan: plan_b,
                tape_fallback: None,
                canary: None,
            },
        ])
    });
    let (_la, local_a, pool) = fixture(22);
    let (_lb, local_b, _) = fixture(23);
    let cfg = FrontConfig {
        threads: 2,
        ..FrontConfig::default()
    };
    let mut front = ServeFront::new(cfg, factory).expect("front starts");
    assert_eq!(
        front.models(),
        ["autocts-a".to_string(), "autocts-b".to_string()]
    );
    counters::reset();
    let ta = front.submit("autocts-a", pool[0].clone()).expect("submit a");
    let tb = front.submit("autocts-b", pool[0].clone()).expect("submit b");
    let tg = front.submit("ghost", pool[0].clone()).expect("submit ghost");
    let out = front.flush().expect("flush");
    let answer = |t: u64| {
        &out.iter()
            .find(|(ticket, _)| *ticket == t)
            .expect("ticket answered")
            .1
    };
    // The same window, two models, two different (correct) forecasts.
    let ya = answer(ta).as_ref().expect("model a answers");
    let yb = answer(tb).as_ref().expect("model b answers");
    assert!(bitwise_eq(ya, &local_a.try_run(&pool[0]).expect("ref a")));
    assert!(bitwise_eq(yb, &local_b.try_run(&pool[0]).expect("ref b")));
    assert!(!bitwise_eq(ya, yb), "two models returned identical bits");
    assert!(matches!(
        answer(tg),
        Err(ServeError::UnknownModel { id }) if id == "ghost"
    ));
    let snap = counters::snapshot();
    assert_eq!(snap.unknown_model, 1);
    // Unknown-model requests are counted instead of `submitted`.
    assert_eq!(snap.submitted, 2);
}

#[test]
fn shard_local_faults_walk_the_ladder_to_the_tape_inside_the_worker() {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    // Fault hooks are thread-local, so the factory arms them *on the
    // worker thread* — exactly the per-thread init hook it exists to be.
    let factory: ShardFactory = Arc::new(|_shard| {
        let (model, plan, _pool) = fixture(24);
        fault::arm(fault::FaultPlan {
            fail_next_plan_runs: 2, // batch run + solo re-run both die
            ..fault::FaultPlan::default()
        });
        Ok(vec![ShardModel {
            id: "m".into(),
            plan,
            tape_fallback: Some(Box::new(move |x| Some(tape_forward(&model, x)))),
            canary: None,
        }])
    });
    let (local_model, _plan, pool) = fixture(24);
    let reference = tape_forward(&local_model, &pool[0]);
    let cfg = FrontConfig {
        threads: 1,
        retries: 0,
        ..FrontConfig::default()
    };
    let mut front = ServeFront::new(cfg, factory).expect("front starts");
    counters::reset();
    front.submit("m", pool[0].clone()).expect("submit");
    let out = front.flush().expect("flush");
    let y = out[0].1.as_ref().expect("tape rung answers");
    assert!(bitwise_eq(y, &reference), "worker tape fallback drifted");
    let snap = counters::snapshot();
    assert_eq!(snap.batch_failures, 1);
    assert_eq!(snap.degraded_tape, 1);
    assert_eq!(snap.failed_requests, 0);

    // Deadlines travel with the envelope: an already-expired budget is
    // shed on the worker with the typed error.
    front
        .submit_with("m", pool[1].clone(), Some(-1.0), 0)
        .expect("submit");
    let out = front.flush().expect("flush");
    assert!(matches!(out[0].1, Err(ServeError::DeadlineExpired { .. })));
}

#[test]
fn canary_gate_rejects_a_diverging_replica_at_startup() {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    // A healthy replica admitted against its own tape reference serves.
    let healthy: ShardFactory = Arc::new(|_shard| {
        let (model, plan, pool) = fixture(25);
        let probe = pool[0].clone();
        let reference = tape_forward(&model, &probe);
        Ok(vec![ShardModel {
            id: "m".into(),
            plan,
            tape_fallback: None,
            canary: Some(ShardCanary {
                probe,
                reference,
                tol: 0.0,
            }),
        }])
    });
    let mut front = ServeFront::new(FrontConfig::default(), healthy).expect("canary passes");
    let (_m, local, pool) = fixture(25);
    front.submit("m", pool[0].clone()).expect("submit");
    let out = front.flush().expect("flush");
    assert!(bitwise_eq(
        out[0].1.as_ref().expect("answer"),
        &local.try_run(&pool[0]).expect("reference")
    ));
    drop(front);

    // A replica that diverges from its reference never starts serving:
    // `new` fails typed, and no worker is left behind.
    let diverging: ShardFactory = Arc::new(|_shard| {
        let (model, plan, pool) = fixture(26);
        let probe = pool[0].clone();
        let mut bits = tape_forward(&model, &probe);
        if let Some(v) = bits.data_mut().first_mut() {
            *v += 1.0; // corrupt the reference → replica "diverges"
        }
        Ok(vec![ShardModel {
            id: "m".into(),
            plan,
            tape_fallback: None,
            canary: Some(ShardCanary {
                probe,
                reference: bits,
                tol: 1e-6,
            }),
        }])
    });
    assert!(matches!(
        ServeFront::new(FrontConfig::default(), diverging),
        Err(ServeError::CanaryRejected { .. })
    ));
}

#[test]
fn hostile_traffic_is_typed_and_the_front_survives() {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    let (_model, local, pool) = fixture(27);
    let cfg = FrontConfig {
        threads: 2,
        ..FrontConfig::default()
    };
    let mut front = ServeFront::new(cfg, single_model_factory(27)).expect("front starts");
    counters::reset();
    let bad_shape = front
        .submit("m", Tensor::zeros([1, 2, 3, 4]))
        .expect("submit");
    let mut nan = pool[0].clone();
    nan.data_mut()[0] = f32::NAN;
    let non_finite = front.submit("m", nan).expect("submit");
    let good = front.submit("m", pool[0].clone()).expect("submit");
    let out = front.flush().expect("flush");
    let answer = |t: u64| {
        &out.iter()
            .find(|(ticket, _)| *ticket == t)
            .expect("ticket answered")
            .1
    };
    assert!(matches!(answer(bad_shape), Err(ServeError::BadShape { .. })));
    assert!(matches!(
        answer(non_finite),
        Err(ServeError::NonFinite { .. })
    ));
    assert!(bitwise_eq(
        answer(good).as_ref().expect("healthy request survives"),
        &local.try_run(&pool[0]).expect("reference")
    ));
    let snap = counters::snapshot();
    assert_eq!(snap.rejected_shape, 1);
    assert_eq!(snap.rejected_non_finite, 1);
    assert_eq!(
        snap.submitted,
        snap.admitted + snap.rejected_shape + snap.rejected_non_finite
    );
}
