//! Integration tests: every baseline trains end to end and improves over
//! its own initialisation on synthetic traffic data.

use autocts::eval::{evaluate_model, train_and_evaluate};
use cts_baselines::{Agcrn, BaselineConfig, Dcrnn, GraphWaveNet, LstNet, Mtgnn, Stgcn, TpaLstm};
use cts_data::{batches_from_windows, build_windows, generate, DatasetSpec};
use cts_nn::{Forecaster, LossKind, TrainConfig};

fn traffic_fixture() -> (DatasetSpec, cts_data::CtsData, cts_data::SplitWindows) {
    let spec = DatasetSpec::metr_la().scaled(0.05, 0.015);
    let data = generate(&spec, 21);
    let windows = build_windows(&data, 5, 28);
    (spec, data, windows)
}

fn train_improves(model: &dyn Forecaster, spec: &DatasetSpec, windows: &cts_data::SplitWindows) {
    let test = batches_from_windows(&windows.test, 4);
    let (before, _) = evaluate_model(model, &test, spec.null_value);
    let cfg = TrainConfig {
        epochs: 5,
        lr: 2e-3,
        weight_decay: 1e-4,
        clip: 5.0,
        loss: LossKind::MaskedMae { null_value: spec.null_value },
        patience: 0,
        ..TrainConfig::default()
    };
    let report = train_and_evaluate(model, spec, windows, &cfg, 4).unwrap();
    assert!(
        report.overall.mae < before.mae,
        "{}: MAE did not improve ({} -> {})",
        model.name(),
        before.mae,
        report.overall.mae
    );
    assert!(report.overall.mae.is_finite());
}

#[test]
fn stgcn_trains_and_improves() {
    let (spec, data, windows) = traffic_fixture();
    let m = Stgcn::new(&BaselineConfig::default(), &spec, &data.graph, &windows.scaler);
    train_improves(&m, &spec, &windows);
}

#[test]
fn dcrnn_trains_and_improves() {
    let (spec, data, windows) = traffic_fixture();
    let m = Dcrnn::new(&BaselineConfig::default(), &spec, &data.graph, &windows.scaler);
    train_improves(&m, &spec, &windows);
}

#[test]
fn gwnet_trains_and_improves() {
    let (spec, data, windows) = traffic_fixture();
    let m = GraphWaveNet::new(&BaselineConfig::default(), &spec, &data.graph, &windows.scaler);
    train_improves(&m, &spec, &windows);
}

#[test]
fn agcrn_trains_and_improves() {
    let (spec, data, windows) = traffic_fixture();
    let m = Agcrn::new(&BaselineConfig::default(), &spec, &data.graph, &windows.scaler);
    train_improves(&m, &spec, &windows);
}

#[test]
fn mtgnn_trains_and_improves() {
    let (spec, data, windows) = traffic_fixture();
    let m = Mtgnn::new(&BaselineConfig::default(), &spec, &data.graph, &windows.scaler);
    train_improves(&m, &spec, &windows);
}

#[test]
fn lstnet_and_tpa_train_on_single_step() {
    let spec = DatasetSpec::solar_energy(3).scaled(0.06, 0.006);
    let data = generate(&spec, 22);
    let windows = build_windows(&data, 20, 12);
    let cfg = TrainConfig {
        epochs: 5,
        loss: LossKind::Mse,
        ..TrainConfig::default()
    };
    for model in [
        Box::new(LstNet::new(&BaselineConfig::default(), &spec, &data.graph, &windows.scaler))
            as Box<dyn Forecaster>,
        Box::new(TpaLstm::new(&BaselineConfig::default(), &spec, &data.graph, &windows.scaler)),
    ] {
        let report = train_and_evaluate(model.as_ref(), &spec, &windows, &cfg, 4).unwrap();
        assert!(report.overall.rrse.is_finite(), "{} RRSE", model.name());
        assert!(report.overall.rrse > 0.0);
    }
}

#[test]
fn models_predict_in_raw_units() {
    // outputs must be speeds (tens), not z-scores — the affine head works
    let (spec, data, windows) = traffic_fixture();
    let m = GraphWaveNet::new(&BaselineConfig::default(), &spec, &data.graph, &windows.scaler);
    let test = batches_from_windows(&windows.test, 2);
    let (pred, _) = autocts::eval::collect_predictions(&m, &test);
    assert!(
        pred.mean() > 20.0,
        "untrained predictions should sit near the data mean, got {}",
        pred.mean()
    );
}
