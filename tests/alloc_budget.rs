//! Allocation-regression gate: a steady-state supernet train step must stay
//! under a pinned system-allocator budget.
//!
//! The persistent worker pool + buffer arena work brought one weight step
//! on the smoke supernet from ~3.6M system allocations (per-element
//! `unravel` churn, fresh `Vec` per op) down to a few thousand, with the
//! arena serving every tensor buffer from its free lists (zero misses in
//! steady state). The budgets below sit ~5x above the measured steady
//! state so ordinary drift passes, while reintroducing per-step churn —
//! a per-element coordinate `Vec`, a gradient buffer that bypasses the
//! arena, un-recycled tape storage — blows through them immediately.
//!
//! `scripts/check.sh` runs this as part of the tier-1 gate.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use cts_autograd::Tape;
use cts_bench::{prepare, ExpContext};
use cts_data::{batches_from_windows, DatasetSpec};
use cts_nn::{Adam, Forecaster, LossKind, Optimizer};
use rand::{rngs::SmallRng, SeedableRng};

/// Serializes the tests in this binary: both flip the process-wide
/// `cts_obs` metrics switch, and the allocation counters are global.
static GATE: Mutex<()> = Mutex::new(());

/// Measured steady state (2026-08): ~3.5k allocs / ~0.2 MB per weight step.
/// Budgets leave ~5x headroom; the pre-arena baseline was ~170k allocs /
/// ~34 MB even after the odometer fixes, so a regression cannot hide.
const MAX_ALLOCS_PER_STEP: u64 = 20_000;
const MAX_BYTES_PER_STEP: u64 = 2 * 1024 * 1024;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);
static ON: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: pass-through to the system allocator; the counters only observe.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ON.load(Ordering::Relaxed) == 1 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        }
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_train_step_stays_under_alloc_budget() {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    // The budget is pinned for the metrics-off path (the production
    // default); metrics-on adds a few timing reads but no per-step Vecs.
    cts_obs::set_metrics(Some(false));
    let ctx = ExpContext::smoke();
    let p = prepare(&ctx, &DatasetSpec::metr_la());
    let cfg = ctx.search_config();
    let mut rng = SmallRng::seed_from_u64(0);
    let model =
        autocts::SupernetModel::new(&mut rng, &cfg, &p.spec, &p.data.graph, &p.windows.scaler);
    let batches = batches_from_windows(&p.windows.train, ctx.batch);
    let (x, y) = batches[0].clone();
    let mut opt = Adam::new(model.weight_parameters(), cfg.weight_lr, cfg.weight_wd);
    let loss_kind = LossKind::MaskedMae { null_value: Some(0.0) };

    let mut step = || {
        let tape = Tape::new();
        let pred = model.forward(&tape, &tape.constant(x.clone()));
        let loss = loss_kind.compute(&tape, &pred, &y);
        tape.backward(&loss);
        opt.step();
    };

    // Warm the arena and the recycled tape storage to steady state.
    for _ in 0..3 {
        step();
    }

    cts_tensor::arena::reset_stats();
    ON.store(1, Ordering::Relaxed);
    step();
    ON.store(0, Ordering::Relaxed);

    let allocs = ALLOCS.load(Ordering::Relaxed);
    let bytes = BYTES.load(Ordering::Relaxed);
    let stats = cts_tensor::arena::stats();

    assert!(
        allocs <= MAX_ALLOCS_PER_STEP,
        "steady-state step made {allocs} system allocations \
         (budget {MAX_ALLOCS_PER_STEP}); per-step Vec churn has crept back in"
    );
    assert!(
        bytes <= MAX_BYTES_PER_STEP,
        "steady-state step allocated {bytes} bytes \
         (budget {MAX_BYTES_PER_STEP}); a buffer is bypassing the arena"
    );
    assert_eq!(
        stats.misses, 0,
        "arena missed {} times in steady state; a tensor buffer population \
         is not reaching its free-list fixed point (stats: {stats:?})",
        stats.misses
    );
}

/// The observability layer must be a pure observer: the numeric trace of
/// a training loop is bit-identical with metrics on and off.
#[test]
fn metrics_do_not_change_training_trace() {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    let log = std::env::temp_dir().join("cts_alloc_budget_obs.jsonl");
    cts_obs::runlog::set_path(Some(&log));

    let run = |metrics: bool| -> Vec<u32> {
        cts_obs::set_metrics(Some(metrics));
        let ctx = ExpContext::smoke();
        let p = prepare(&ctx, &DatasetSpec::metr_la());
        let cfg = ctx.search_config();
        let mut rng = SmallRng::seed_from_u64(0);
        let model = autocts::SupernetModel::new(
            &mut rng,
            &cfg,
            &p.spec,
            &p.data.graph,
            &p.windows.scaler,
        );
        let batches = batches_from_windows(&p.windows.train, ctx.batch);
        let (x, y) = batches[0].clone();
        let mut opt = Adam::new(model.weight_parameters(), cfg.weight_lr, cfg.weight_wd);
        let loss_kind = LossKind::MaskedMae { null_value: Some(0.0) };
        let mut bits = Vec::new();
        for _ in 0..4 {
            let tape = Tape::new();
            let pred = model.forward(&tape, &tape.constant(x.clone()));
            let loss = loss_kind.compute(&tape, &pred, &y);
            bits.push(loss.value().item().to_bits());
            tape.backward(&loss);
            opt.step();
        }
        bits
    };

    let off = run(false);
    let on = run(true);
    cts_obs::set_metrics(Some(false));
    let _ = std::fs::remove_file(&log);
    assert_eq!(off, on, "metrics collection changed the numeric trace");
}
