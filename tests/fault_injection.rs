//! Fault-injection tests of the crash-safe search runtime: kill the
//! bi-level search mid-epoch and resume it bit-identically, survive NaN
//! gradient blasts through the divergence watchdog, and reject corrupt
//! or truncated checkpoints with a typed error instead of loading them.

use autocts::{joint_search, AutoCts, BlockGenotype, EvalError, Genotype, SearchConfig, SearchError};
use cts_data::{batches_from_windows, build_windows, generate, DatasetSpec, SplitWindows};
use cts_nn::checkpoint::CheckpointError;
use cts_nn::{fault, CheckpointConfig, TrainError};
use cts_ops::OpKind;
use std::path::PathBuf;

fn fixture() -> (DatasetSpec, cts_data::CtsData, SplitWindows) {
    let spec = DatasetSpec::metr_la().scaled(0.04, 0.015);
    let data = generate(&spec, 9);
    let windows = build_windows(&data, 6, 24);
    (spec, data, windows)
}

fn small_cfg() -> SearchConfig {
    SearchConfig {
        m: 3,
        b: 2,
        d_model: 8,
        epochs: 3,
        batch_size: 4,
        ..Default::default()
    }
}

fn temp_ckpt(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("cts_fault_injection_tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::remove_file(&path).ok();
    path
}

#[test]
fn killed_search_resumes_bit_identically() {
    let (spec, data, windows) = fixture();
    let ckpt = temp_ckpt("resume.ckpt");

    // Reference: one uninterrupted run, no checkpointing.
    let (g_ref, _, stats_ref) =
        joint_search(&small_cfg(), &spec, &data.graph, &windows).unwrap();
    assert_eq!(stats_ref.epochs.len(), 3);
    let steps_per_epoch = stats_ref.steps / 3;
    assert!(steps_per_epoch > 1, "fixture too small to kill mid-epoch");

    // Kill the search inside epoch 1 (after the epoch-0 checkpoint).
    let cfg = small_cfg().with_checkpoint(CheckpointConfig::new(&ckpt));
    fault::arm(fault::FaultPlan {
        abort_at_step: Some((steps_per_epoch + 1) as u64),
        ..fault::FaultPlan::default()
    });
    let err = match joint_search(&cfg, &spec, &data.graph, &windows) {
        Err(e) => e,
        Ok(_) => panic!("armed abort did not interrupt the search"),
    };
    fault::disarm();
    assert!(matches!(err, SearchError::Interrupted { .. }), "{err}");
    assert!(ckpt.exists(), "no checkpoint was written before the kill");

    // Resume: must complete and match the reference bit-for-bit.
    let (g_resumed, _, stats_resumed) =
        joint_search(&cfg, &spec, &data.graph, &windows).unwrap();
    assert_eq!(g_resumed, g_ref, "resumed genotype differs");
    assert_eq!(stats_resumed.steps, stats_ref.steps);
    assert_eq!(stats_resumed.epochs.len(), stats_ref.epochs.len());
    for (a, b) in stats_resumed.epochs.iter().zip(&stats_ref.epochs) {
        assert_eq!(a.tau.to_bits(), b.tau.to_bits(), "τ trace diverges");
        assert_eq!(
            a.val_loss.to_bits(),
            b.val_loss.to_bits(),
            "loss trace diverges"
        );
        assert_eq!(
            a.alpha_entropy.to_bits(),
            b.alpha_entropy.to_bits(),
            "entropy trace diverges"
        );
    }
    std::fs::remove_file(&ckpt).ok();
}

#[test]
fn killed_retraining_resumes_bit_identically() {
    let (spec, data, windows) = fixture();
    let base_ckpt = temp_ckpt("retrain_base.ckpt");
    let stage_ckpt = temp_ckpt("retrain_base.retrain.ckpt");
    let genotype = Genotype {
        blocks: vec![
            BlockGenotype {
                m: 3,
                edges: vec![
                    (0, 1, OpKind::Gdcc),
                    (0, 2, OpKind::InformerT),
                    (1, 2, OpKind::Identity),
                ],
            };
            2
        ],
        backbone: vec![0, 1],
    };
    let epochs = 3;

    // Reference: one uninterrupted retraining, no checkpointing.
    let auto = AutoCts::new(small_cfg());
    let report_ref = auto
        .try_evaluate(&genotype, &spec, &data.graph, &windows, epochs)
        .unwrap();

    // Kill the retraining inside epoch 1 (after the epoch-0 checkpoint).
    // The retrain stage writes to the `.retrain` sibling of the config's
    // checkpoint path, so a combined search+evaluate run never clobbers
    // its search checkpoint.
    let steps_per_epoch = batches_from_windows(&windows.train_and_val(), 4).len() as u64;
    assert!(steps_per_epoch > 1, "fixture too small to kill mid-epoch");
    let auto_ck = AutoCts::new(small_cfg().with_checkpoint(CheckpointConfig::new(&base_ckpt)));
    fault::arm(fault::FaultPlan {
        abort_at_step: Some(steps_per_epoch + 1),
        ..fault::FaultPlan::default()
    });
    let err = match auto_ck.try_evaluate(&genotype, &spec, &data.graph, &windows, epochs) {
        Err(e) => e,
        Ok(_) => panic!("armed abort did not interrupt the retraining"),
    };
    fault::disarm();
    assert!(
        matches!(err, EvalError::Train(TrainError::Interrupted { .. })),
        "{err}"
    );
    assert!(stage_ckpt.exists(), "no retrain-stage checkpoint was written");
    assert!(!base_ckpt.exists(), "retraining must not write the search checkpoint path");

    // Resume: must finish and reproduce the reference metrics exactly.
    let report_resumed = auto_ck
        .try_evaluate(&genotype, &spec, &data.graph, &windows, epochs)
        .unwrap();
    assert_eq!(
        report_resumed.overall.mae.to_bits(),
        report_ref.overall.mae.to_bits(),
        "resumed MAE differs: {} vs {}",
        report_resumed.overall.mae,
        report_ref.overall.mae
    );
    assert_eq!(report_resumed.overall.rmse.to_bits(), report_ref.overall.rmse.to_bits());
    std::fs::remove_file(&stage_ckpt).ok();
}

#[test]
fn invalid_genotype_is_rejected_before_retraining() {
    let (spec, data, windows) = fixture();
    // Node 1 feeds the output only through `zero`: the gdcc on edge 0 can
    // never train. Static pre-flight must reject this before any model
    // (or checkpoint) is built.
    let genotype = Genotype {
        blocks: vec![BlockGenotype {
            m: 3,
            edges: vec![
                (0, 1, OpKind::Gdcc),
                (1, 2, OpKind::Zero),
                (0, 2, OpKind::InformerT),
            ],
        }],
        backbone: vec![0],
    };
    let auto = AutoCts::new(SearchConfig { b: 1, ..small_cfg() });
    match auto.try_evaluate(&genotype, &spec, &data.graph, &windows, 1) {
        Err(EvalError::Rejected(e)) => {
            let msg = e.to_string();
            assert!(msg.contains("block0.e0"), "{msg}");
        }
        Err(other) => panic!("expected Rejected, got {other:?}"),
        Ok(_) => panic!("starved genotype was accepted"),
    }
}

#[test]
fn search_watchdog_recovers_from_nan_gradients() {
    let (spec, data, windows) = fixture();
    fault::arm(fault::FaultPlan {
        nan_grad_at_step: Some(3),
        ..fault::FaultPlan::default()
    });
    let (genotype, _, stats) =
        joint_search(&small_cfg(), &spec, &data.graph, &windows).unwrap();
    fault::disarm();
    genotype.validate().unwrap();
    assert_eq!(stats.rollbacks, 1, "watchdog never rolled back");
    assert_eq!(stats.epochs.len(), 3, "a poisoned epoch was kept");
    assert!(
        stats.epochs.iter().all(|e| e.val_loss.is_finite()),
        "NaN leaked into the epoch trace"
    );
}

#[test]
fn corrupt_checkpoint_is_rejected_not_loaded() {
    let (spec, data, windows) = fixture();
    let ckpt = temp_ckpt("corrupt.ckpt");
    let cfg = small_cfg().with_checkpoint(CheckpointConfig::new(&ckpt));
    joint_search(&cfg, &spec, &data.graph, &windows).unwrap();

    // Flip one byte in the middle: the CRC must catch it.
    let mut bytes = std::fs::read(&ckpt).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&ckpt, &bytes).unwrap();
    match joint_search(&cfg, &spec, &data.graph, &windows) {
        Err(SearchError::Checkpoint(CheckpointError::Corrupt(_))) => {}
        Err(other) => panic!("expected Corrupt, got {other:?}"),
        Ok(_) => panic!("bit-flipped checkpoint was loaded"),
    }

    // Truncate it: also a typed rejection, never a crash or a load.
    bytes[mid] ^= 0x40; // restore the flipped byte
    std::fs::write(&ckpt, &bytes[..mid]).unwrap();
    match joint_search(&cfg, &spec, &data.graph, &windows) {
        Err(SearchError::Checkpoint(CheckpointError::Corrupt(_))) => {}
        Err(other) => panic!("expected Corrupt, got {other:?}"),
        Ok(_) => panic!("truncated checkpoint was loaded"),
    }
    std::fs::remove_file(&ckpt).ok();
}

#[test]
fn checkpoint_from_different_seed_is_rejected() {
    let (spec, data, windows) = fixture();
    let ckpt = temp_ckpt("wrong_seed.ckpt");
    let cfg = small_cfg().with_checkpoint(CheckpointConfig::new(&ckpt));
    joint_search(&cfg, &spec, &data.graph, &windows).unwrap();

    // Same checkpoint, different seed: the RNG replay cannot land on the
    // recorded state, so resume must refuse rather than continue wrongly.
    let other_seed = SearchConfig { seed: 2, ..cfg };
    match joint_search(&other_seed, &spec, &data.graph, &windows) {
        Err(SearchError::Checkpoint(CheckpointError::Incompatible(msg))) => {
            assert!(msg.contains("RNG"), "{msg}");
        }
        Err(other) => panic!("expected Incompatible, got {other:?}"),
        Ok(_) => panic!("checkpoint from another seed was accepted"),
    }
    std::fs::remove_file(&ckpt).ok();
}
