//! Acceptance test of the observability layer: metrics collection is a
//! pure observer of `joint_search` (bit-identical genotype and per-epoch
//! trace with metrics on and off), the JSONL run log carries the
//! documented row kinds, and `cts_obs::report` summarizes it.

use autocts::{joint_search, EpochStats, SearchConfig};
use cts_data::{build_windows, generate, DatasetSpec};

fn small_cfg() -> SearchConfig {
    SearchConfig {
        m: 3,
        b: 2,
        d_model: 8,
        epochs: 2,
        batch_size: 4,
        ..Default::default()
    }
}

fn trace_bits(epochs: &[EpochStats]) -> Vec<[u32; 3]> {
    epochs
        .iter()
        .map(|e| {
            [
                e.tau.to_bits(),
                e.val_loss.to_bits(),
                e.alpha_entropy.to_bits(),
            ]
        })
        .collect()
}

#[test]
fn metrics_are_a_pure_observer_and_the_log_summarizes() {
    let cfg = small_cfg();
    let spec = DatasetSpec::metr_la().scaled(0.04, 0.015);
    let data = generate(&spec, 9);
    let windows = build_windows(&data, 6, 24);

    // Reference run: metrics off (the production default).
    cts_obs::set_metrics(Some(false));
    let (g_off, _, stats_off) = joint_search(&cfg, &spec, &data.graph, &windows).unwrap();

    // Instrumented run: metrics on, log into a temp file.
    let log = std::env::temp_dir().join("cts_observability_test.jsonl");
    cts_obs::runlog::set_path(Some(&log));
    cts_obs::set_metrics(Some(true));
    let (g_on, _, stats_on) = joint_search(&cfg, &spec, &data.graph, &windows).unwrap();
    cts_obs::set_metrics(Some(false));

    // Pure observer: the search result must not depend on observation.
    assert_eq!(g_off, g_on, "metrics changed the derived genotype");
    assert_eq!(
        trace_bits(&stats_off.epochs),
        trace_bits(&stats_on.epochs),
        "metrics changed the per-epoch trace"
    );
    assert_eq!(stats_off.steps, stats_on.steps);

    // The log carries the documented row kinds...
    let text = std::fs::read_to_string(&log).unwrap();
    let _ = std::fs::remove_file(&log);
    for kind in ["run_start", "epoch", "phase", "tape", "kernel", "arena", "run_end"] {
        assert!(
            text.contains(&format!("\"event\":\"{kind}\"")),
            "run log is missing {kind:?} rows:\n{text}"
        );
    }
    for field in ["tau", "val_loss", "alpha_entropy"] {
        assert!(
            text.contains(&format!("\"{field}\":")),
            "epoch rows are missing the {field} field"
        );
    }

    // ...and the report summarizer folds them.
    let sum = cts_obs::report::summarize(&text);
    assert_eq!(sum.skipped_lines, 0, "summarizer skipped valid lines");
    assert_eq!(sum.epochs.len(), cfg.epochs);
    let last = sum.epochs.last().unwrap();
    assert_eq!(
        last.tau.map(f64::to_bits),
        Some((stats_on.epochs[1].tau as f64).to_bits()),
        "tau did not round-trip through the JSONL log"
    );
    assert!(
        sum.kernels.iter().any(|k| k.name == "matmul"),
        "kernel table lost matmul: {:?}",
        sum.kernels
    );
    assert!(
        sum.phases.iter().any(|p| p.name == "forward" && p.calls > 0),
        "phase table lost forward: {:?}",
        sum.phases
    );
    assert!(sum.arena_hits + sum.arena_misses > 0, "arena counters empty");
    assert!(sum.tape_backwards > 0, "tape counters empty");
    let rendered = cts_obs::report::render_text(&sum);
    assert!(rendered.contains("kernels"), "render_text missing kernel table");
    let bench = cts_obs::report::render_bench_json(&sum);
    assert!(bench.contains("\"rows\""), "bench json missing rows array");
}
