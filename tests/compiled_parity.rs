//! Compiled-plan parity gate: the tape-free `ExecPlan` forward must be
//! **bit-identical** (epsilon 0) to the autograd-tape forward, across
//! randomized genotypes and batch sizes — and a steady-state compiled
//! forward must perform **zero** system allocations, with every buffer
//! served from the warmed arena.
//!
//! Bit-exactness holds by construction: every `forward_eval` mirror
//! invokes exactly the same `cts_tensor::ops` kernels in exactly the
//! same order as the tape path, and plans read the live `Parameter`
//! cells rather than snapshots. This suite pins both halves of that
//! contract; `scripts/check.sh` runs it as part of the tier-1 gate, and
//! the `verify_space` sweep repeats the parity check on every accepted
//! candidate of the discrete space.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use autocts::{BlockGenotype, DerivedModel, Genotype, SearchConfig};
use cts_autograd::Tape;
use cts_data::{batches_from_windows, build_windows, generate, DatasetSpec};
use cts_nn::Forecaster;
use cts_ops::compact_set;
use rand::{rngs::SmallRng, Rng, SeedableRng};

/// Serializes the tests: the allocation counters are process-global.
static GATE: Mutex<()> = Mutex::new(());

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);
static ON: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: pass-through to the system allocator; the counters only observe.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ON.load(Ordering::Relaxed) == 1 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        }
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Edge slots of the canonical M = 3 derived block.
const SLOTS: [(usize, usize); 3] = [(0, 1), (1, 2), (0, 2)];

/// Smoke-scale fixture: input_len 6 keeps ProbSparse's top-query
/// selection inside the sort's no-allocation bound.
fn fixture() -> (SearchConfig, DatasetSpec, cts_data::CtsData, cts_data::SplitWindows) {
    let spec = DatasetSpec::metr_la().scaled(0.04, 0.015);
    let data = generate(&spec, 11);
    let windows = build_windows(&data, 6, 24);
    let cfg = SearchConfig {
        m: 3,
        b: 2,
        d_model: 8,
        batch_size: 2,
        ..Default::default()
    };
    (cfg, spec, data, windows)
}

#[test]
fn compiled_forward_is_bit_identical_to_tape() {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    cts_obs::set_metrics(Some(false));
    let (cfg, spec, data, windows) = fixture();
    let ops = compact_set();
    let mut rng = SmallRng::seed_from_u64(42);

    for trial in 0..12usize {
        let block = BlockGenotype {
            m: 3,
            edges: SLOTS
                .iter()
                .map(|&(f, t)| (f, t, ops[rng.gen_range(0..ops.len())]))
                .collect(),
        };
        let backbone = if rng.gen_range(0..2) == 0 { vec![0, 0] } else { vec![0, 1] };
        let genotype = Genotype {
            blocks: vec![block.clone(); cfg.b],
            backbone,
        };
        let batch = rng.gen_range(1..4usize);
        let model =
            DerivedModel::new(&mut rng, &cfg, &genotype, &spec, &data.graph, &windows.scaler);
        let batches = batches_from_windows(&windows.train, batch);
        let (x, _) = &batches[trial % batches.len()];

        let tape = Tape::new();
        let tape_out = model.forward(&tape, &tape.constant(x.clone())).value();
        let plan = model.compiled_plan().expect("every structural genotype compiles");
        let compiled = plan.try_run(x).expect("parity fixture input matches plan dims");

        assert_eq!(
            compiled.shape(),
            tape_out.shape(),
            "trial {trial} ({}): compiled shape diverged",
            genotype.to_text()
        );
        for (i, (a, b)) in compiled.data().iter().zip(tape_out.data()).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "trial {trial} ({}): scalar {i} diverges: compiled {a} vs tape {b}",
                genotype.to_text()
            );
        }
    }
}

/// Parity must survive a weight update without recompiling: plans read
/// the live parameter cells, never snapshots.
#[test]
fn compiled_plan_tracks_retrained_weights() {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    cts_obs::set_metrics(Some(false));
    let (cfg, spec, data, windows) = fixture();
    let mut rng = SmallRng::seed_from_u64(3);
    let block = BlockGenotype {
        m: 3,
        edges: vec![
            (0, 1, cts_ops::OpKind::Gdcc),
            (1, 2, cts_ops::OpKind::InformerT),
            (0, 2, cts_ops::OpKind::Dgcn),
        ],
    };
    let genotype = Genotype {
        blocks: vec![block.clone(); cfg.b],
        backbone: vec![0, 1],
    };
    let model = DerivedModel::new(&mut rng, &cfg, &genotype, &spec, &data.graph, &windows.scaler);
    let batches = batches_from_windows(&windows.train, 2);
    let (x, _) = &batches[0];

    let plan = model.compiled_plan().expect("compiles");
    let before = plan.try_run(x).expect("parity fixture input matches plan dims");

    // Perturb a weight in place, as an optimizer step would.
    let params = model.parameters();
    let p = &params[1];
    let nudged = cts_tensor::ops::add_scalar(&p.value().clone(), 0.25);
    p.set_value(nudged);

    let tape = Tape::new();
    let tape_out = model.forward(&tape, &tape.constant(x.clone())).value();
    let after = plan.try_run(x).expect("parity fixture input matches plan dims");
    assert!(
        before.data().iter().zip(after.data()).any(|(a, b)| a != b),
        "weight perturbation did not reach the compiled plan"
    );
    for (i, (a, b)) in after.data().iter().zip(tape_out.data()).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "post-update scalar {i} diverges: compiled {a} vs tape {b}"
        );
    }
}

#[test]
fn steady_state_compiled_forward_allocates_nothing() {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    cts_obs::set_metrics(Some(false));
    let (cfg, spec, data, windows) = fixture();
    let mut rng = SmallRng::seed_from_u64(9);
    let block = BlockGenotype {
        m: 3,
        edges: vec![
            (0, 1, cts_ops::OpKind::Gdcc),
            (1, 2, cts_ops::OpKind::InformerT),
            (0, 2, cts_ops::OpKind::Dgcn),
        ],
    };
    let genotype = Genotype {
        blocks: vec![block.clone(); cfg.b],
        backbone: vec![0, 1],
    };
    let model = DerivedModel::new(&mut rng, &cfg, &genotype, &spec, &data.graph, &windows.scaler);
    let batches = batches_from_windows(&windows.train, 2);
    let (x, _) = &batches[0];

    let plan = model.compiled_plan().expect("compiles");
    plan.prewarm(x.shape()[0]);
    for _ in 0..3 {
        let _ = plan.try_run(x).expect("parity fixture input matches plan dims");
    }

    cts_tensor::arena::reset_stats();
    ALLOCS.store(0, Ordering::Relaxed);
    BYTES.store(0, Ordering::Relaxed);
    ON.store(1, Ordering::Relaxed);
    let out = plan.try_run(x).expect("parity fixture input matches plan dims");
    ON.store(0, Ordering::Relaxed);
    drop(out);

    let allocs = ALLOCS.load(Ordering::Relaxed);
    let bytes = BYTES.load(Ordering::Relaxed);
    let stats = cts_tensor::arena::stats();
    assert_eq!(
        allocs, 0,
        "steady-state compiled forward made {allocs} system allocations \
         ({bytes} bytes); an eval path is churning buffers outside the arena"
    );
    assert_eq!(
        stats.misses, 0,
        "arena missed {} times in a warmed compiled forward (stats: {stats:?})",
        stats.misses
    );
}
