//! Integration test: a searched-and-trained model round-trips through
//! (genotype text + weight checkpoint) persistence.

use autocts::eval::collect_predictions;
use autocts::{AutoCts, DerivedModel, Genotype, SearchConfig};
use cts_data::{batches_from_windows, build_windows, generate, DatasetSpec};
use cts_nn::checkpoint::{load_parameters, save_parameters};
use cts_nn::{train_full, Forecaster, LossKind, TrainConfig};
use rand::{rngs::SmallRng, SeedableRng};

#[test]
fn genotype_plus_checkpoint_reconstructs_model_exactly() {
    let spec = DatasetSpec::metr_la().scaled(0.04, 0.014);
    let data = generate(&spec, 33);
    let windows = build_windows(&data, 6, 20);
    let cfg = SearchConfig {
        m: 3,
        b: 2,
        d_model: 8,
        epochs: 1,
        batch_size: 4,
        ..Default::default()
    };

    // search + short training
    let auto = AutoCts::new(cfg.clone());
    let outcome = auto.search(&spec, &data.graph, &windows);
    let mut rng = SmallRng::seed_from_u64(99);
    let model = DerivedModel::new(&mut rng, &cfg, &outcome.genotype, &spec, &data.graph, &windows.scaler);
    let batches = batches_from_windows(&windows.train, 4);
    train_full(
        &model,
        &batches,
        None,
        &TrainConfig {
            epochs: 2,
            loss: LossKind::MaskedMae { null_value: Some(0.0) },
            ..Default::default()
        },
    )
    .unwrap();

    // persist: architecture as text, weights as checkpoint
    let dir = std::env::temp_dir().join("autocts_persist_test");
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt = dir.join("weights.ckpt");
    let genotype_text = outcome.genotype.to_text();
    save_parameters(&ckpt, &model.parameters()).unwrap();

    // reconstruct from scratch with different random init
    let parsed = Genotype::from_text(&genotype_text).unwrap();
    let mut rng2 = SmallRng::seed_from_u64(12345);
    let restored = DerivedModel::new(&mut rng2, &cfg, &parsed, &spec, &data.graph, &windows.scaler);
    let n = load_parameters(&ckpt, &restored.parameters()).unwrap();
    assert_eq!(n, restored.parameters().len());

    // identical predictions
    let test_batches = batches_from_windows(&windows.test[..2.min(windows.test.len())], 2);
    let (pred_orig, _) = collect_predictions(&model, &test_batches);
    let (pred_restored, _) = collect_predictions(&restored, &test_batches);
    assert!(
        pred_orig.approx_eq(&pred_restored, 1e-5),
        "restored model diverges: {} vs {}",
        pred_orig.data()[0],
        pred_restored.data()[0]
    );
    std::fs::remove_file(&ckpt).ok();
}
