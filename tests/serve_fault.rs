//! Chaos suite for the fault-tolerant serving path.
//!
//! Every test arms a `cts_nn::fault` serving hook (NaN output, plan-exec
//! failure, kill-mid-flush, retry storms) or feeds the batcher hostile
//! inputs (wrong shapes, NaN floods, oversize requests, missing-heavy
//! windows, queue floods), then asserts the three load-bearing
//! guarantees:
//!
//! 1. **No panics** — every failure surfaces as a typed
//!    [`cts_runtime::ServeError`].
//! 2. **Batch isolation** — healthy requests coalesced with a poisoned or
//!    failing one keep answers **bit-identical** to solo runs (for
//!    row-independent plans) or to the same no-fault batch (for
//!    ProbSparse plans, whose query selection is batch-averaged).
//! 3. **Observable degradation** — every shed/quarantine/degrade/retry
//!    event shows up in the `cts_obs::serve` counters the serve bench
//!    writes into `BENCH_serve.json`.

use autocts::{BlockGenotype, DerivedModel, Genotype, SearchConfig};
use cts_autograd::Tape;
use cts_data::{batches_from_windows, build_windows, generate, DatasetSpec};
use cts_nn::{fault, Forecaster};
use cts_obs::serve as counters;
use cts_ops::OpKind;
use cts_runtime::{AdmissionPolicy, ExecPlan, MicroBatcher, PlanRegistry, ServeError};
use cts_tensor::{ops, Tensor};
use proptest::prelude::*;
use rand::{rngs::SmallRng, SeedableRng};
use std::rc::Rc;
use std::sync::Mutex;

/// Serializes the tests: the serve counters are process-global.
static GATE: Mutex<()> = Mutex::new(());

/// Smoke-scale derived model plus its compiled plan and a pool of live
/// test windows (each `[1, N, T, F]`).
///
/// The genotype mixes temporal conv, full attention, and diffusion graph
/// conv — all row-independent ops, so a window's forecast is the same
/// bit pattern whether it runs solo or coalesced. ProbSparse attention
/// (`InformerT`) is deliberately excluded here: its query selection is
/// batch-averaged (see DESIGN.md), so coalescing legitimately changes
/// answers; its isolation guarantee is covered separately by
/// [`prob_sparse_neighbors_match_the_no_fault_batch`].
fn fixture(seed: u64) -> (Rc<DerivedModel>, Rc<ExecPlan>, Vec<Tensor>) {
    fixture_with(seed, OpKind::TransformerT)
}

/// [`fixture`] with a caller-chosen op on the 1→2 edge.
fn fixture_with(seed: u64, mid_op: OpKind) -> (Rc<DerivedModel>, Rc<ExecPlan>, Vec<Tensor>) {
    let spec = DatasetSpec::metr_la().scaled(0.04, 0.015);
    let data = generate(&spec, 11);
    let windows = build_windows(&data, 6, 24);
    let cfg = SearchConfig {
        m: 3,
        b: 2,
        d_model: 8,
        batch_size: 2,
        ..Default::default()
    };
    let block = BlockGenotype {
        m: 3,
        edges: vec![
            (0, 1, OpKind::Gdcc),
            (1, 2, mid_op),
            (0, 2, OpKind::Dgcn),
        ],
    };
    let genotype = Genotype {
        blocks: vec![block.clone(); cfg.b],
        backbone: vec![0, 1],
    };
    let mut rng = SmallRng::seed_from_u64(seed);
    let model = Rc::new(DerivedModel::new(
        &mut rng,
        &cfg,
        &genotype,
        &spec,
        &data.graph,
        &windows.scaler,
    ));
    let plan = model.compiled_plan().expect("fixture genotype compiles");
    let pool: Vec<Tensor> = batches_from_windows(&windows.test, 1)
        .iter()
        .take(6)
        .map(|(x, _)| x.clone())
        .collect();
    assert!(pool.len() >= 4, "fixture produced too few test windows");
    (model, plan, pool)
}

fn tape_forward(model: &DerivedModel, x: &Tensor) -> Tensor {
    let tape = Tape::new();
    let xv = tape.constant(x.clone());
    model.forward(&tape, &xv).value()
}

fn bitwise_eq(a: &Tensor, b: &Tensor) -> bool {
    a.shape() == b.shape()
        && a.data()
            .iter()
            .zip(b.data())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

#[test]
fn nan_output_fault_isolates_the_poisoned_request() {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    let (_model, plan, pool) = fixture(0);
    let solos: Vec<Tensor> = pool
        .iter()
        .map(|x| plan.try_run(x).expect("solo reference"))
        .collect();
    let mut batcher = MicroBatcher::new(Rc::clone(&plan), pool.len()).unwrap();
    for x in &pool {
        batcher.submit(x.clone()).unwrap();
    }
    counters::reset();
    fault::arm(fault::FaultPlan {
        nan_output_at_run: Some(0),
        ..fault::FaultPlan::default()
    });
    let out = batcher.flush();
    fault::disarm();
    for (i, (solo, y)) in solos.iter().zip(&out).enumerate() {
        let y = y.as_ref().unwrap_or_else(|e| panic!("request {i} failed: {e}"));
        assert!(bitwise_eq(y, solo), "request {i} drifted from its solo run");
    }
    let snap = counters::snapshot();
    assert_eq!(snap.poisoned_outputs, 1, "poison not observed");
    assert_eq!(snap.quarantined, 1, "exactly one request quarantines");
    assert_eq!(snap.degraded_solo, 1, "quarantined request recovers solo");
    assert_eq!(snap.failed_requests, 0);
}

#[test]
fn kill_mid_flush_fails_one_group_and_spares_the_rest() {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    let (_model, plan, pool) = fixture(1);
    let solos: Vec<Tensor> = pool
        .iter()
        .take(4)
        .map(|x| plan.try_run(x).expect("solo reference"))
        .collect();
    // max_batch 2 over 4 singles → two coalesced groups per flush.
    let mut batcher = MicroBatcher::new(Rc::clone(&plan), 2).unwrap();
    for x in pool.iter().take(4) {
        batcher.submit(x.clone()).unwrap();
    }
    counters::reset();
    // Kill the second group's forward (run index 1) mid-flush.
    fault::arm(fault::FaultPlan {
        fail_plan_run_at: Some(1),
        ..fault::FaultPlan::default()
    });
    let out = batcher.flush();
    fault::disarm();
    assert_eq!(out.len(), 4);
    for (i, (solo, y)) in solos.iter().zip(&out).enumerate() {
        let y = y.as_ref().unwrap_or_else(|e| panic!("request {i} failed: {e}"));
        assert!(bitwise_eq(y, solo), "request {i} drifted");
    }
    let snap = counters::snapshot();
    assert_eq!(snap.batch_failures, 1, "the killed group is counted");
    assert_eq!(snap.quarantined, 2, "both members of the killed group");
    assert_eq!(snap.degraded_solo, 2);
    assert_eq!(snap.failed_requests, 0);
}

#[test]
fn retry_storm_degrades_to_tape_bitwise_then_to_typed_error() {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    let (model, plan, pool) = fixture(2);
    let reference = tape_forward(&model, &pool[0]);
    let fallback_model = Rc::clone(&model);
    let mut batcher = MicroBatcher::new(Rc::clone(&plan), 4)
        .unwrap()
        .with_retries(1)
        .with_tape_fallback(Box::new(move |x| Some(tape_forward(&fallback_model, x))));
    batcher.submit(pool[0].clone()).unwrap();
    counters::reset();
    // Batch run + solo + one retry all fail → the tape answers, and the
    // tape answer is the model's own forward, bit for bit.
    fault::arm(fault::FaultPlan {
        fail_next_plan_runs: 3,
        ..fault::FaultPlan::default()
    });
    let out = batcher.flush();
    let y = out[0].as_ref().expect("tape rung answers");
    assert!(bitwise_eq(y, &reference), "tape fallback drifted");
    let snap = counters::snapshot();
    assert_eq!(snap.degraded_tape, 1);
    assert_eq!(snap.solo_retries, 1);
    assert_eq!(snap.failed_requests, 0);

    // Without a fallback the same storm ends in a typed error, not a
    // panic.
    let mut bare = MicroBatcher::new(Rc::clone(&plan), 4).unwrap().with_retries(1);
    bare.submit(pool[0].clone()).unwrap();
    fault::arm(fault::FaultPlan {
        fail_next_plan_runs: 3,
        ..fault::FaultPlan::default()
    });
    let out = bare.flush();
    fault::disarm();
    assert!(matches!(
        out[0],
        Err(ServeError::PlanExec { attempts: 2, .. })
    ));
    assert_eq!(counters::snapshot().failed_requests, 1);
}

#[test]
fn oversize_flood_splits_and_never_exceeds_the_cap() {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    let (_model, plan, pool) = fixture(3);
    let parts: Vec<&Tensor> = pool.iter().take(5).collect();
    let flood = ops::concat(&parts, 0); // [5, N, T, F] against max_batch 2
    let solo = plan.try_run(&flood).expect("solo reference");
    let mut batcher = MicroBatcher::new(Rc::clone(&plan), 2).unwrap();
    counters::reset();
    batcher.submit(flood.clone()).unwrap();
    batcher.submit(pool[5].clone()).unwrap();
    fault::arm(fault::FaultPlan::default()); // reset the max-rows tracker
    let out = batcher.flush();
    fault::disarm();
    let y = out[0].as_ref().expect("oversize request answers");
    assert!(bitwise_eq(y, &solo), "split answer drifted from one-shot run");
    assert!(out[1].is_ok());
    assert!(
        fault::max_batch_rows() <= 2,
        "a forward ran {} rows, above the cap of 2",
        fault::max_batch_rows()
    );
    assert_eq!(counters::snapshot().oversize_split, 1);
}

#[test]
fn adversarial_flood_is_all_typed_errors_and_service_survives() {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    let (_model, plan, pool) = fixture(4);
    let n = plan.nodes();
    let t = plan.input_len();
    let f = plan.features();
    let mut batcher = MicroBatcher::new(Rc::clone(&plan), 4)
        .unwrap()
        .with_queue_limit(3)
        .unwrap()
        .with_admission(AdmissionPolicy::new(Some(0.0), 0.5).unwrap());
    counters::reset();

    // Wrong rank and wrong dims: rejected at admission.
    assert!(matches!(
        batcher.submit(Tensor::zeros([n, t, f])),
        Err(ServeError::BadShape { .. })
    ));
    assert!(matches!(
        batcher.submit(Tensor::zeros([1, n + 1, t, f])),
        Err(ServeError::BadShape { .. })
    ));
    // All-sentinel window: over the 50% missing cap.
    assert!(matches!(
        batcher.submit(Tensor::zeros([1, n, t, f])),
        Err(ServeError::TooMissing { .. })
    ));
    // NaN flood: masked into the sentinel… and then over the missing cap.
    let nan_flood = Tensor::from_vec(
        vec![1, n, t, f],
        vec![f32::NAN; n * t * f],
    );
    assert!(matches!(
        batcher.submit(nan_flood),
        Err(ServeError::TooMissing { .. })
    ));
    // Queue flood: the bound sheds the overflow.
    for x in pool.iter().take(3) {
        batcher.submit(x.clone()).unwrap();
    }
    assert!(matches!(
        batcher.submit(pool[3].clone()),
        Err(ServeError::QueueFull { limit: 3 })
    ));
    // Expired deadline on the next flush round.
    let out = batcher.flush();
    assert_eq!(out.len(), 3);
    assert!(out.iter().all(|r| r.is_ok()), "healthy requests survived");
    batcher
        .submit_with_deadline(pool[0].clone(), Some(-1.0))
        .unwrap();
    let out = batcher.flush();
    assert!(matches!(out[0], Err(ServeError::DeadlineExpired { .. })));

    // Service is still healthy afterwards.
    batcher.submit(pool[0].clone()).unwrap();
    let out = batcher.flush();
    assert!(out[0].is_ok(), "service did not survive the flood");

    let snap = counters::snapshot();
    assert_eq!(snap.rejected_shape, 2);
    assert_eq!(snap.rejected_missing, 2);
    assert_eq!(snap.queue_shed, 1);
    assert_eq!(snap.deadline_shed, 1);
    assert_eq!(snap.failed_requests, 0);
}

#[test]
fn prob_sparse_neighbors_match_the_no_fault_batch() {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    // ProbSparse attention selects its active queries from a
    // batch-averaged measurement (DESIGN.md), so coalescing legitimately
    // changes answers and "bit-identical to solo" cannot hold. The
    // isolation guarantee that DOES hold: a fault in one request leaves
    // its coalesced neighbors bit-identical to the same batch run
    // without the fault, and the quarantined request's solo re-run is
    // bit-identical to a plain solo run.
    let (_model, plan, pool) = fixture_with(8, OpKind::InformerT);
    let requests: Vec<Tensor> = pool.iter().take(4).cloned().collect();
    let mut batcher = MicroBatcher::new(Rc::clone(&plan), requests.len()).unwrap();

    // Baseline: the identical batch composition, no fault.
    for x in &requests {
        batcher.submit(x.clone()).unwrap();
    }
    let baseline: Vec<Tensor> = batcher
        .flush()
        .into_iter()
        .map(|r| r.expect("no-fault baseline"))
        .collect();
    let solo0 = plan.try_run(&requests[0]).expect("solo reference");

    for x in &requests {
        batcher.submit(x.clone()).unwrap();
    }
    counters::reset();
    fault::arm(fault::FaultPlan {
        nan_output_at_run: Some(0),
        ..fault::FaultPlan::default()
    });
    let out = batcher.flush();
    fault::disarm();

    // Request 0 (the poisoned slice) recovered through a solo re-run.
    let y0 = out[0].as_ref().expect("poisoned request recovers");
    assert!(bitwise_eq(y0, &solo0), "quarantined re-run drifted from solo");
    // Its neighbors kept their coalesced answers untouched by the fault.
    for (i, (base, y)) in baseline.iter().zip(&out).enumerate().skip(1) {
        let y = y.as_ref().unwrap_or_else(|e| panic!("request {i} failed: {e}"));
        assert!(bitwise_eq(y, base), "neighbor {i} drifted from the no-fault batch");
    }
    let snap = counters::snapshot();
    assert_eq!(snap.quarantined, 1);
    assert_eq!(snap.degraded_solo, 1);
    assert_eq!(snap.failed_requests, 0);
}

#[test]
fn canary_gate_blocks_a_diverging_plan_and_keeps_the_old_one() {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    let (model, plan, pool) = fixture(5);
    let probe = &pool[0];
    let reference = tape_forward(&model, probe);
    let mut registry = PlanRegistry::new();
    counters::reset();
    registry
        .admit("m", Rc::clone(&plan), probe, &reference, 0.0)
        .expect("plan is bit-identical to its own tape");

    // A "new build" whose forecast diverges (different seed → different
    // weights) must be rejected, leaving the admitted plan serving.
    let (_, imposter, _) = fixture(6);
    let err = match registry.admit("m", Rc::clone(&imposter), probe, &reference, 1e-6) {
        Err(e) => e,
        Ok(_) => panic!("diverging plan reached the registry"),
    };
    assert!(matches!(err, ServeError::CanaryRejected { .. }), "{err}");
    assert!(
        Rc::ptr_eq(&registry.get("m").expect("old plan still serves"), &plan),
        "rollback lost the serving plan"
    );
    // A plan whose canary run itself dies is equally rejected.
    fault::arm(fault::FaultPlan {
        fail_plan_run_at: Some(0),
        ..fault::FaultPlan::default()
    });
    assert!(registry
        .admit("m2", Rc::clone(&imposter), probe, &reference, 1e-6)
        .is_err());
    fault::disarm();
    assert!(registry.get("m2").is_none());
    let snap = counters::snapshot();
    assert_eq!(snap.canary_pass, 1);
    assert_eq!(snap.canary_fail, 2);
}

#[test]
fn slow_group_cannot_smuggle_a_later_request_past_its_deadline() {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    // Regression: `flush` used to check deadlines only once, up front
    // (rung 0). A request whose budget expired *while earlier groups in
    // the same flush executed* would still run and return a forecast
    // after its deadline. The fix re-checks `queued.elapsed_ms()`
    // immediately before each group executes.
    let (_model, plan, pool) = fixture(9);
    // max_batch 1 → the two requests form two sequential groups.
    let mut batcher = MicroBatcher::new(Rc::clone(&plan), 1).unwrap();
    batcher.submit(pool[0].clone()).unwrap();
    batcher
        .submit_with_deadline(pool[1].clone(), Some(25.0))
        .unwrap();
    counters::reset();
    // Slow the first group's forward (run 0) by 60 ms: request 1's 25 ms
    // budget expires while request 0 executes, after rung 0 passed it.
    fault::arm(fault::FaultPlan {
        slow_plan_run_at: Some((0, 60)),
        ..fault::FaultPlan::default()
    });
    let out = batcher.flush();
    fault::disarm();
    assert!(out[0].is_ok(), "the slow request itself still answers");
    assert!(
        matches!(
            out[1],
            Err(ServeError::DeadlineExpired { waited_ms, deadline_ms })
                if waited_ms > deadline_ms
        ),
        "request behind the slow group returned {:?} after its deadline",
        out[1].as_ref().map(|_| "a forecast")
    );
    assert_eq!(counters::snapshot().deadline_shed, 1);
}

#[test]
fn packer_scans_past_a_non_fitting_request_instead_of_stranding_later_ones() {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    // Regression: the greedy packer only coalesced *consecutive*
    // requests, so sizes [2, 3, 2] under max_batch 4 closed the first
    // group at {r0} (2+3 > 4) and ran three singleton groups. Skip-ahead
    // packing scans past r1 and packs {r0, r2} (4 rows), then {r1} —
    // two forwards instead of three, with answers still written in
    // submission order.
    let (_model, plan, pool) = fixture(10);
    let two_a = ops::concat(&[&pool[0], &pool[1]], 0);
    let three = ops::concat(&[&pool[2], &pool[3], &pool[4]], 0);
    let two_b = ops::concat(&[&pool[5], &pool[0]], 0);
    let requests = [two_a, three, two_b];
    let solos: Vec<Tensor> = requests
        .iter()
        .map(|x| plan.try_run(x).expect("solo reference"))
        .collect();
    let mut batcher = MicroBatcher::new(Rc::clone(&plan), 4).unwrap();
    for x in &requests {
        batcher.submit(x.clone()).unwrap();
    }
    fault::arm(fault::FaultPlan::default()); // reset the run counter
    let out = batcher.flush();
    let runs = fault::plan_runs();
    let max_rows = fault::max_batch_rows();
    fault::disarm();
    assert_eq!(
        runs, 2,
        "sizes [2, 3, 2] under cap 4 must pack into two forwards, ran {runs}"
    );
    assert!(max_rows <= 4, "a forward ran {max_rows} rows, above the cap");
    for (i, (solo, y)) in solos.iter().zip(&out).enumerate() {
        let y = y.as_ref().unwrap_or_else(|e| panic!("request {i} failed: {e}"));
        assert!(bitwise_eq(y, solo), "request {i} drifted under skip-ahead packing");
    }
}

/// Forward count of the pre-fix packer: greedy *consecutive* coalescing
/// (close the group as soon as the next request does not fit), oversize
/// requests split into `ceil(b / cap)` sub-batches. The skip-ahead packer
/// must never run more forwards than this on any request sequence.
fn consecutive_runs(sizes: &[usize], cap: usize) -> u64 {
    let mut runs = 0u64;
    let mut i = 0;
    while i < sizes.len() {
        if sizes[i] > cap {
            runs += sizes[i].div_ceil(cap) as u64;
            i += 1;
            continue;
        }
        let mut total = sizes[i];
        i += 1;
        while i < sizes.len() && total + sizes[i] <= cap {
            total += sizes[i];
            i += 1;
        }
        runs += 1;
    }
    runs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Packing invariants under randomized request sizes, caps, and an
    /// optional injected first-run failure: submission order is
    /// preserved, no executed forward exceeds `max_batch`, and every
    /// answer — through the coalesced path or the quarantine ladder — is
    /// bit-identical to a solo run.
    fn batcher_packing_invariants(
        len in 1usize..6,
        raw_sizes in collection::vec(1usize..4, 6),
        max_batch in 1usize..5,
        fail_first in proptest::bool::ANY,
    ) {
        let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
        let (_model, plan, pool) = fixture(7);
        let sizes = &raw_sizes[..len];
        let requests: Vec<Tensor> = sizes
            .iter()
            .enumerate()
            .map(|(i, &b)| {
                let parts: Vec<&Tensor> =
                    (0..b).map(|k| &pool[(i + k) % pool.len()]).collect();
                ops::concat(&parts, 0)
            })
            .collect();
        let solos: Vec<Tensor> = requests
            .iter()
            .map(|x| plan.try_run(x).expect("solo reference"))
            .collect();
        let mut batcher = MicroBatcher::new(Rc::clone(&plan), max_batch).unwrap();
        for x in &requests {
            batcher.submit(x.clone()).unwrap();
        }
        // Arm resets the max-rows tracker; optionally kill the first
        // forward to push everything through the quarantine ladder.
        fault::arm(fault::FaultPlan {
            fail_plan_run_at: if fail_first { Some(0) } else { None },
            ..fault::FaultPlan::default()
        });
        let out = batcher.flush();
        let max_rows = fault::max_batch_rows();
        let runs = fault::plan_runs();
        fault::disarm();
        prop_assert_eq!(out.len(), requests.len());
        prop_assert!(
            max_rows <= max_batch,
            "a forward ran {} rows, above the cap of {}",
            max_rows,
            max_batch
        );
        // Skip-ahead packing never runs more forwards than the old
        // consecutive-only packer would have (brute-force-verified over
        // this whole input domain). Only meaningful fault-free: a failed
        // first run adds quarantine solos to the count.
        if !fail_first {
            let bound = consecutive_runs(sizes, max_batch);
            prop_assert!(
                runs <= bound,
                "skip-ahead packed {} forwards, consecutive packing needs only {}",
                runs,
                bound
            );
        }
        for (i, (solo, y)) in solos.iter().zip(&out).enumerate() {
            let y = y.as_ref().unwrap_or_else(|e| panic!("request {i} failed: {e}"));
            prop_assert!(bitwise_eq(y, solo), "request {} drifted", i);
        }
    }
}
