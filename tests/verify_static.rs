//! Property tests tying the static analyzer to the runtime: for random
//! search-space sizes, window lengths, and seeds, (1) every derived
//! genotype passes pre-flight, and (2) the statically inferred merged
//! shape matches the tensors the real model produces.

use autocts::preflight::{arch_spec, preflight};
use autocts::{derive_genotype, DerivedModel, SearchConfig, SupernetModel};
use cts_autograd::Tape;
use cts_data::{batches_from_windows, build_windows, generate, DatasetSpec};
use cts_nn::Forecaster;
use cts_tensor::sym::eval_shape;
use proptest::prelude::*;
use rand::{rngs::SmallRng, SeedableRng};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Static shape inference agrees with runtime shapes for randomized
    /// genotypes and input lengths, and derivation never produces a
    /// genotype the analyzer rejects.
    #[test]
    fn static_shapes_agree_with_runtime(
        m in 2usize..5,
        b in 1usize..3,
        input_len in 6usize..16,
        seed in 0u64..200,
    ) {
        let cfg = SearchConfig { m, b, d_model: 4, batch_size: 2, seed, ..Default::default() };
        let mut spec = DatasetSpec::metr_la().scaled(0.04, 0.012);
        spec.input_len = input_len;
        let data = generate(&spec, seed);
        let windows = build_windows(&data, 8, 8);
        let mut rng = SmallRng::seed_from_u64(seed);
        let supernet = SupernetModel::new(&mut rng, &cfg, &spec, &data.graph, &windows.scaler);
        let genotype = derive_genotype(&supernet).expect("finite snapshot derives");

        // 1. pre-flight accepts every derived genotype…
        let report = preflight(&cfg, &genotype, &spec, &data.graph)
            .expect("derived genotype rejected by static verification");

        // 2. …its merged-shape verdict binds to the concrete batch dims…
        let batches = batches_from_windows(&windows.train, cfg.batch_size);
        let (x, _) = &batches[0];
        let bsz = x.shape()[0];
        let merged = report.merged_shape.expect("shape pass incomplete");
        let bound = eval_shape(&merged, &[("B", bsz)]).expect("unbound symbol in merged shape");
        prop_assert_eq!(bound, vec![bsz, data.graph.n(), input_len, cfg.d_model]);

        // 3. …and the real model produces exactly the predicted output.
        let model = DerivedModel::new(&mut rng, &cfg, &genotype, &spec, &data.graph, &windows.scaler);
        let tape = Tape::new();
        let xv = tape.constant(x.clone());
        let pred = model.forward(&tape, &xv);
        prop_assert_eq!(pred.value().shape(), &[bsz, data.graph.n(), spec.output_len]);

        // The spec the analyzer saw matches the genotype it verified.
        let spec_desc = arch_spec(&cfg, &genotype, &spec, &data.graph);
        prop_assert_eq!(spec_desc.blocks.len(), genotype.blocks.len());
        prop_assert_eq!(spec_desc.backbone, genotype.backbone);
    }
}
