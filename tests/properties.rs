//! Workspace-level property-based tests on core invariants.

use autocts::{derive_genotype, Genotype, SearchConfig, SupernetModel};
use cts_data::{build_windows, generate, DatasetSpec, EvalMetrics};
use cts_ops::OpKind;
use cts_tensor::Tensor;
use proptest::prelude::*;
use rand::{rngs::SmallRng, SeedableRng};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Derivation always yields a valid genotype, for any (M, B, edges)
    /// and any randomly initialised supernet.
    #[test]
    fn derivation_always_valid(m in 2usize..6, b in 1usize..4, edges in 1usize..3, seed in 0u64..500) {
        let cfg = SearchConfig {
            m,
            b,
            d_model: 4,
            edges_per_node: edges,
            seed,
            ..Default::default()
        };
        let spec = DatasetSpec::metr_la().scaled(0.04, 0.012);
        let data = generate(&spec, seed);
        let windows = build_windows(&data, 8, 8);
        let mut rng = SmallRng::seed_from_u64(seed);
        let supernet = SupernetModel::new(&mut rng, &cfg, &spec, &data.graph, &windows.scaler);
        let g = derive_genotype(&supernet).expect("finite snapshot derives");
        prop_assert!(g.validate().is_ok(), "{:?}", g.validate());
        prop_assert_eq!(g.b(), b);
        // derived blocks never contain the zero op
        for block in &g.blocks {
            for (_, _, op) in &block.edges {
                prop_assert!(*op != OpKind::Zero);
            }
        }
        // per-node incoming-edge budget respected
        for block in &g.blocks {
            for j in 1..block.m {
                prop_assert!(block.incoming(j).len() <= edges.max(1));
            }
        }
    }

    /// Genotype text serialisation roundtrips for derived genotypes.
    #[test]
    fn genotype_text_roundtrip(seed in 0u64..1000) {
        let cfg = SearchConfig { m: 4, b: 3, d_model: 4, seed, ..Default::default() };
        let spec = DatasetSpec::pems08().scaled(0.06, 0.02);
        let data = generate(&spec, seed);
        let windows = build_windows(&data, 8, 8);
        let mut rng = SmallRng::seed_from_u64(seed);
        let supernet = SupernetModel::new(&mut rng, &cfg, &spec, &data.graph, &windows.scaler);
        let g = derive_genotype(&supernet).expect("finite snapshot derives");
        let parsed = Genotype::from_text(&g.to_text()).unwrap();
        prop_assert_eq!(parsed, g);
    }

    /// Metrics invariants: RMSE >= MAE, perfect predictions score zero
    /// error and CORR 1, and metrics are permutation-consistent.
    #[test]
    fn metric_invariants(values in proptest::collection::vec(1.0f32..100.0, 24)) {
        let target = Tensor::from_vec([4, 3, 2], values.clone());
        let perfect = EvalMetrics::compute(&target, &target, None);
        prop_assert!(perfect.mae == 0.0 && perfect.rmse == 0.0 && perfect.rrse == 0.0);

        let pred = target.map(|v| v + 1.0);
        let m = EvalMetrics::compute(&pred, &target, None);
        prop_assert!((m.mae - 1.0).abs() < 1e-5);
        prop_assert!(m.rmse + 1e-6 >= m.mae);
        prop_assert!(m.mape > 0.0);
    }

    /// The scaler roundtrips target values for any time series.
    #[test]
    fn scaler_roundtrip(values in proptest::collection::vec(-50f32..50.0, 40)) {
        let t = Tensor::from_vec([2, 20, 1], values.clone());
        let scaler = cts_data::Scaler::fit(&t, 20);
        let mut z = t.clone();
        scaler.transform(&mut z);
        for (orig, zv) in t.data().iter().zip(z.data().iter()) {
            prop_assert!((scaler.invert_target(*zv) - orig).abs() < 2e-2);
        }
    }

    /// Window extraction never leaks future values into inputs: the last
    /// input step of window `s` comes strictly before its first target.
    #[test]
    fn windows_are_causal(seed in 0u64..200) {
        let spec = DatasetSpec::pems04().scaled(0.04, 0.02);
        let data = generate(&spec, seed);
        let windows = build_windows(&data, 3, 10);
        let p = spec.input_len;
        // reconstruct: for the first train window (start 0), inputs are
        // t in [0, P), targets start at t = P
        let w = &windows.train[0];
        let raw_target_first = data.values.at(&[0, p, 0]);
        prop_assert!((w.y.at(&[0, 0]) - raw_target_first).abs() < 1e-5);
    }
}
