//! Count-under-execution oracle for the static cost model.
//!
//! The analyzer (`cts_verify::analyze_cost`) and the compiled plan
//! (`ExecPlan::static_cost`) both claim to price a genotype's forward
//! **exactly** — not approximately. This suite holds them to it across
//! randomized accepted genotypes:
//!
//! 1. the plan's static FLOPs / bytes-read / bytes-written /
//!    kernel-call counts must match the `cts_tensor::meter` debug
//!    instrumentation, bit for bit, around a real `try_run`;
//! 2. the analyzer's rollup must agree with the plan's — same totals
//!    from two independent walks (symbolic spec vs compiled steps);
//! 3. the analyzer's plan-faithful peak-bytes estimate must be `≥` the
//!    arena's observed high-water mark for the same run (soundness),
//!    and its ideal-liveness peak must never exceed the plan-faithful
//!    one.
//!
//! `scripts/check.sh` runs this as part of the tier-1 gate; together
//! with the 100-case proptest below it covers well over the 100
//! randomized genotypes the cost-model acceptance gate requires.

use autocts::preflight::arch_spec;
use autocts::{BlockGenotype, DerivedModel, Genotype, SearchConfig};
use cts_data::{batches_from_windows, build_windows, generate, CtsData, DatasetSpec, SplitWindows};
use cts_ops::compact_set;
use cts_tensor::{arena, meter};
use proptest::prelude::*;
use rand::{rngs::SmallRng, Rng, SeedableRng};

/// Edge slots of the canonical M = 3 derived block.
const SLOTS: [(usize, usize); 3] = [(0, 1), (1, 2), (0, 2)];

thread_local! {
    /// One shared smoke fixture per test thread: dataset synthesis is the
    /// expensive part of each case, and it is identical across cases.
    static FIXTURE: (SearchConfig, DatasetSpec, CtsData, SplitWindows) = {
        let spec = DatasetSpec::metr_la().scaled(0.04, 0.015);
        let data = generate(&spec, 11);
        let windows = build_windows(&data, 6, 24);
        let cfg = SearchConfig {
            m: 3,
            b: 2,
            d_model: 8,
            batch_size: 2,
            ..Default::default()
        };
        (cfg, spec, data, windows)
    };
}

/// Sample genotypes until the analyzer accepts one (the compact set
/// accepts ~72% of assignments, so a handful of draws suffices).
fn accepted_genotype(rng: &mut SmallRng, cfg: &SearchConfig, spec: &DatasetSpec, data: &CtsData) -> Genotype {
    let ops = compact_set();
    for _ in 0..256 {
        let block = BlockGenotype {
            m: 3,
            edges: SLOTS
                .iter()
                .map(|&(f, t)| (f, t, ops[rng.gen_range(0..ops.len())]))
                .collect(),
        };
        let backbone = if rng.gen_range(0..2) == 0 { vec![0, 0] } else { vec![0, 1] };
        let genotype = Genotype {
            blocks: vec![block.clone(); cfg.b],
            backbone,
        };
        let arch = arch_spec(cfg, &genotype, spec, &data.graph);
        if cts_verify::validate_genotype(&arch).is_ok() {
            return genotype;
        }
    }
    unreachable!("256 draws from the compact set produced no accepted genotype");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(100))]

    /// Static flops/bytes are **exact** against the instrumented kernel
    /// counters, the analyzer agrees with the compiled plan, and the
    /// predicted peak covers the measured arena high-water mark.
    #[test]
    fn static_cost_is_exact_and_peak_is_sound(seed in 0u64..1_000_000) {
        FIXTURE.with(|(cfg, spec, data, windows)| {
            let mut rng = SmallRng::seed_from_u64(seed);
            let genotype = accepted_genotype(&mut rng, cfg, spec, data);
            let batches = batches_from_windows(&windows.train, rng.gen_range(1..4usize));
            let (x, _) = &batches[rng.gen_range(0..batches.len())];
            let batch = x.shape()[0];

            let model =
                DerivedModel::new(&mut rng, cfg, &genotype, spec, &data.graph, &windows.scaler);
            let plan = model.compiled_plan().expect("accepted genotypes compile");
            let static_cost = plan.static_cost(batch);

            // Independent rollup from the symbolic spec must agree with
            // the walk over compiled steps.
            let arch = arch_spec(cfg, &genotype, spec, &data.graph);
            let report = cts_verify::analyze_cost(&arch, batch).expect("accepted genotypes price");
            prop_assert_eq!(
                report.total, static_cost,
                "analyzer rollup disagrees with ExecPlan::static_cost for {}",
                genotype.to_text()
            );
            prop_assert!(report.ideal_peak_bytes <= report.peak_bytes);

            // Count-under-execution oracle: run the plan with the kernel
            // meter on and compare bit for bit.
            //
            // Bins are cleared first: a recycled exact-capacity buffer
            // from a previous case (e.g. a dropped batch tensor built
            // via `Tensor::from_vec`) can be served for a smaller
            // request in its size class and charge its full capacity,
            // inflating the gauge past the pow2 class sizes the
            // analyzer prices. Cold takes always allocate exactly the
            // class-rounded capacity, which is the policy under test.
            arena::clear();
            let (live_before, _) = arena::live_stats();
            arena::reset_live_peak();
            meter::reset();
            meter::set_enabled(true);
            let out = plan.try_run(x);
            meter::set_enabled(false);
            let m = meter::snapshot();
            prop_assert!(out.is_ok(), "accepted genotype failed to run: {:?}", out.err());

            prop_assert_eq!(static_cost.flops, m.flops, "flops diverge for {}", genotype.to_text());
            prop_assert_eq!(
                static_cost.bytes_read, m.bytes_read(),
                "bytes read diverge for {}", genotype.to_text()
            );
            prop_assert_eq!(
                static_cost.bytes_written, m.bytes_written(),
                "bytes written diverge for {}", genotype.to_text()
            );
            prop_assert_eq!(
                static_cost.kernel_calls, m.kernel_calls,
                "kernel calls diverge for {}", genotype.to_text()
            );

            // Peak soundness: the plan-faithful estimate must cover the
            // residency this run actually added on top of what was live.
            let (_, peak_live) = arena::live_stats();
            let measured = (peak_live.saturating_sub(live_before) as u64).saturating_mul(4);
            prop_assert!(
                report.peak_bytes >= measured,
                "predicted peak {} B < measured arena high-water {} B for {}",
                report.peak_bytes, measured, genotype.to_text()
            );
        });
    }
}
