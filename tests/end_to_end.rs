//! Cross-crate integration tests: the full AutoCTS pipeline, ablation
//! variants, and transfer, exercised end to end on tiny synthetic data.

use autocts::{AutoCts, Genotype, SearchConfig};
use cts_data::{build_windows, generate, DatasetSpec, SplitWindows};

fn tiny_traffic(seed: u64) -> (DatasetSpec, cts_data::CtsData, SplitWindows) {
    let spec = DatasetSpec::metr_la().scaled(0.045, 0.014);
    let data = generate(&spec, seed);
    let windows = build_windows(&data, 6, 24);
    (spec, data, windows)
}

fn tiny_cfg() -> SearchConfig {
    SearchConfig {
        m: 3,
        b: 2,
        d_model: 8,
        epochs: 2,
        batch_size: 4,
        ..Default::default()
    }
}

#[test]
fn full_pipeline_search_derive_evaluate() {
    let (spec, data, windows) = tiny_traffic(1);
    let auto = AutoCts::new(tiny_cfg());
    let outcome = auto.search(&spec, &data.graph, &windows);
    outcome.genotype.validate().unwrap();
    assert_eq!(outcome.genotype.b(), 2);
    let report = auto.evaluate(&outcome.genotype, &spec, &data.graph, &windows, 6);
    assert!(report.overall.mae.is_finite() && report.overall.mae > 0.0);
    assert!(report.overall.rmse >= report.overall.mae);
    assert_eq!(report.horizons.len(), spec.output_len);
}

#[test]
fn genotype_survives_serialisation_and_transfer() {
    let (spec, data, windows) = tiny_traffic(2);
    let auto = AutoCts::new(tiny_cfg());
    let outcome = auto.search(&spec, &data.graph, &windows);
    // serialise, parse, and evaluate on a *different* dataset (transfer)
    let text = outcome.genotype.to_text();
    let parsed = Genotype::from_text(&text).unwrap();
    assert_eq!(parsed, outcome.genotype);
    let spec2 = DatasetSpec::pems08().scaled(0.06, 0.02);
    let data2 = generate(&spec2, 3);
    let windows2 = build_windows(&data2, 6, 24);
    let report = auto.evaluate(&parsed, &spec2, &data2.graph, &windows2, 4);
    assert!(report.overall.mae.is_finite());
}

#[test]
fn ablation_variants_all_run() {
    let (spec, data, windows) = tiny_traffic(4);
    for cfg in [
        tiny_cfg().without_temperature(),
        tiny_cfg().without_macro_search(),
        tiny_cfg().without_design_principles(),
    ] {
        let auto = AutoCts::new(cfg.clone());
        let outcome = auto.search(&spec, &data.graph, &windows);
        outcome.genotype.validate().unwrap();
        if !cfg.macro_search {
            // stacked homogeneous blocks in a chain
            assert_eq!(outcome.genotype.backbone, vec![0, 1]);
            assert_eq!(outcome.genotype.blocks[0], outcome.genotype.blocks[1]);
        }
    }
}

#[test]
fn single_step_pipeline_runs_without_graph() {
    let spec = DatasetSpec::electricity(3).scaled(0.03, 0.025);
    let data = generate(&spec, 5);
    assert_eq!(data.graph.edge_count(), 0);
    let windows = build_windows(&data, 16, 12);
    let auto = AutoCts::new(SearchConfig {
        m: 3,
        b: 2,
        d_model: 8,
        epochs: 1,
        batch_size: 4,
        ..Default::default()
    });
    let outcome = auto.search(&spec, &data.graph, &windows);
    let report = auto.evaluate(&outcome.genotype, &spec, &data.graph, &windows, 3);
    assert!(report.overall.rrse.is_finite());
    assert!(report.overall.corr.is_finite());
}

#[test]
fn search_cost_scales_with_operator_set() {
    // the w/o-design-principles space (12 ops) must cost more per step
    // than the compact space (6 ops) — the paper's efficiency claim.
    let (spec, data, windows) = tiny_traffic(6);
    let run = |cfg: SearchConfig| {
        let auto = AutoCts::new(cfg);
        auto.search(&spec, &data.graph, &windows).stats
    };
    let compact = run(tiny_cfg());
    let full = run(tiny_cfg().without_design_principles());
    assert_eq!(compact.steps, full.steps);
    assert!(
        full.secs > compact.secs,
        "full set {} not slower than compact {}",
        full.secs,
        compact.secs
    );
}
