//! Reproduces the mechanism behind §3.2.2 / Figure 5: the annealed softmax
//! temperature shrinks the gap between the relaxed micro-DAG and the
//! derived ST-block, measured as α-softmax entropy.

use autocts::{joint_search, SearchConfig};
use cts_data::{build_windows, generate, DatasetSpec};

fn fixture() -> (DatasetSpec, cts_data::CtsData, cts_data::SplitWindows) {
    let spec = DatasetSpec::metr_la().scaled(0.045, 0.014);
    let data = generate(&spec, 55);
    let windows = build_windows(&data, 6, 20);
    (spec, data, windows)
}

#[test]
fn annealing_drives_alpha_entropy_down() {
    let (spec, data, windows) = fixture();
    let cfg = SearchConfig {
        m: 3,
        b: 2,
        d_model: 8,
        epochs: 5,
        batch_size: 4,
        tau_factor: 0.4, // aggressive annealing to see the effect in 5 epochs
        arch_lr: 5e-2,   // let alpha actually differentiate within 5 epochs
        ..Default::default()
    };
    let (_, _, stats) = joint_search(&cfg, &spec, &data.graph, &windows).unwrap();
    assert_eq!(stats.epochs.len(), 5);
    let first = stats.epochs.first().unwrap();
    let last = stats.epochs.last().unwrap();
    // τ annealed as configured
    assert!(last.tau < first.tau);
    // entropy (the discretisation gap) shrank substantially
    assert!(
        last.alpha_entropy < first.alpha_entropy * 0.8,
        "entropy {} -> {} did not shrink",
        first.alpha_entropy,
        last.alpha_entropy
    );
}

#[test]
fn without_temperature_entropy_stays_high() {
    let (spec, data, windows) = fixture();
    let base = SearchConfig {
        m: 3,
        b: 2,
        d_model: 8,
        epochs: 5,
        batch_size: 4,
        tau_factor: 0.4,
        arch_lr: 5e-2,
        ..Default::default()
    };
    let (_, _, annealed) = joint_search(&base, &spec, &data.graph, &windows).unwrap();
    let (_, _, flat) = joint_search(&base.clone().without_temperature(), &spec, &data.graph, &windows).unwrap();
    let gap_annealed = annealed.epochs.last().unwrap().alpha_entropy;
    let gap_flat = flat.epochs.last().unwrap().alpha_entropy;
    assert!(
        gap_annealed < gap_flat,
        "annealed gap {gap_annealed} not below constant-temperature gap {gap_flat}"
    );
}

#[test]
fn epoch_trace_records_losses() {
    let (spec, data, windows) = fixture();
    let cfg = SearchConfig {
        m: 3,
        b: 2,
        d_model: 8,
        epochs: 2,
        batch_size: 4,
        ..Default::default()
    };
    let (_, _, stats) = joint_search(&cfg, &spec, &data.graph, &windows).unwrap();
    for e in &stats.epochs {
        assert!(e.val_loss.is_finite() && e.val_loss > 0.0);
        assert!(e.alpha_entropy >= 0.0);
    }
}
