//! Shared fixture for the serving integration suites: a smoke-scale
//! derived model (METR-LA shapes, mixed temporal/attention/graph ops, all
//! row-independent), its compiled plan, and a pool of live test windows.
//!
//! Everything here is seed-deterministic, which is what makes the
//! front-end tests work at all: a worker thread calling [`fixture`] with
//! the same seed compiles a bit-identical replica of the main thread's
//! plan, so cross-thread answers can be compared bit for bit.

#![allow(dead_code)]

use autocts::{BlockGenotype, DerivedModel, Genotype, SearchConfig};
use cts_autograd::Tape;
use cts_data::{batches_from_windows, build_windows, generate, DatasetSpec};
use cts_nn::Forecaster;
use cts_ops::OpKind;
use cts_runtime::ExecPlan;
use cts_tensor::Tensor;
use rand::{rngs::SmallRng, SeedableRng};
use std::rc::Rc;

/// Deterministic smoke-scale model + compiled plan + test windows
/// (each `[1, N, T, F]`).
pub fn fixture(seed: u64) -> (Rc<DerivedModel>, Rc<ExecPlan>, Vec<Tensor>) {
    fixture_with(seed, OpKind::TransformerT)
}

/// [`fixture`] with a caller-chosen op on the 1→2 edge.
pub fn fixture_with(seed: u64, mid_op: OpKind) -> (Rc<DerivedModel>, Rc<ExecPlan>, Vec<Tensor>) {
    let spec = DatasetSpec::metr_la().scaled(0.04, 0.015);
    let data = generate(&spec, 11);
    let windows = build_windows(&data, 6, 24);
    let cfg = SearchConfig {
        m: 3,
        b: 2,
        d_model: 8,
        batch_size: 2,
        ..Default::default()
    };
    let block = BlockGenotype {
        m: 3,
        edges: vec![
            (0, 1, OpKind::Gdcc),
            (1, 2, mid_op),
            (0, 2, OpKind::Dgcn),
        ],
    };
    let genotype = Genotype {
        blocks: vec![block.clone(); cfg.b],
        backbone: vec![0, 1],
    };
    let mut rng = SmallRng::seed_from_u64(seed);
    let model = Rc::new(DerivedModel::new(
        &mut rng,
        &cfg,
        &genotype,
        &spec,
        &data.graph,
        &windows.scaler,
    ));
    let plan = model.compiled_plan().expect("fixture genotype compiles");
    let pool: Vec<Tensor> = batches_from_windows(&windows.test, 1)
        .iter()
        .take(6)
        .map(|(x, _)| x.clone())
        .collect();
    assert!(pool.len() >= 4, "fixture produced too few test windows");
    (model, plan, pool)
}

/// One tape forward of `model` on `x` — the bit-exact reference the
/// compiled plan must reproduce.
pub fn tape_forward(model: &DerivedModel, x: &Tensor) -> Tensor {
    let tape = Tape::new();
    let xv = tape.constant(x.clone());
    model.forward(&tape, &xv).value()
}

/// Exact bit equality (`f32::to_bits`), shape included.
pub fn bitwise_eq(a: &Tensor, b: &Tensor) -> bool {
    a.shape() == b.shape()
        && a.data()
            .iter()
            .zip(b.data())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}
