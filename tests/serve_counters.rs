//! Accounting invariant for the serve counters.
//!
//! Every request offered to the serving layer must be accounted for in
//! exactly one admission bucket:
//!
//! ```text
//! submitted == admitted + rejected_shape + rejected_non_finite
//!            + rejected_missing + queue_shed
//! ```
//!
//! `unknown_model` is counted *instead of* `submitted` (routing precedes
//! admission), cache hits count as `admitted`, and `deadline_shed`
//! applies to already-admitted requests — none of them may break the
//! identity. This test drives a randomized submit/flush sequence through
//! both the raw `MicroBatcher` and the threaded `ServeFront` (hostile
//! shapes, NaN floods, sentinel-heavy windows, queue overflow, unknown
//! models, repeated windows for cache hits, expired deadlines) and then
//! checks the books. It runs alone in its own binary so no other test's
//! counter traffic can leak into the ledger.

mod common;

use common::fixture;
use cts_obs::serve as counters;
use cts_runtime::{
    AdmissionPolicy, FrontConfig, MicroBatcher, ServeFront, ShardFactory, ShardModel,
};
use cts_tensor::Tensor;
use rand::{rngs::SmallRng, Rng, SeedableRng};
use std::rc::Rc;
use std::sync::Arc;

#[test]
fn conservation_invariant_holds_across_a_randomized_sequence() {
    counters::reset();
    let mut rng = SmallRng::seed_from_u64(99);

    // Phase 1: raw batcher with a null-sentinel admission policy and a
    // tight queue, so TooMissing and QueueFull both fire.
    let (_model, plan, pool) = fixture(30);
    let (n, t, f) = (plan.nodes(), plan.input_len(), plan.features());
    let mut batcher = MicroBatcher::new(Rc::clone(&plan), 4)
        .expect("batcher")
        .with_queue_limit(2)
        .expect("queue limit")
        .with_admission(AdmissionPolicy::new(Some(0.0), 0.5).expect("policy"));
    for _ in 0..4 {
        let burst = rng.gen_range(1..6);
        for _ in 0..burst {
            match rng.gen_range(0..4) {
                0 => {
                    // Healthy window (sheds QueueFull past the bound).
                    let w = &pool[rng.gen_range(0..pool.len())];
                    let _ = batcher.submit(w.clone());
                }
                1 => {
                    // Wrong shape.
                    let _ = batcher.submit(Tensor::zeros([1, n + 1, t, f]));
                }
                2 => {
                    // All-sentinel window: over the 50% missing cap.
                    let _ = batcher.submit(Tensor::zeros([1, n, t, f]));
                }
                _ => {
                    // Admitted, then shed at flush — deadline_shed must
                    // stay outside the admission identity.
                    let w = &pool[rng.gen_range(0..pool.len())];
                    let _ = batcher.submit_with_deadline(w.clone(), Some(-1.0));
                }
            }
        }
        let _ = batcher.flush();
    }
    // Deterministic top-ups so every batcher-side bucket fires at least
    // once regardless of what the random draw produced.
    let _ = batcher.submit(Tensor::zeros([1, n + 1, t, f])); // rejected_shape
    let _ = batcher.submit(Tensor::zeros([1, n, t, f])); // rejected_missing
    let _ = batcher.submit_with_deadline(pool[0].clone(), Some(-1.0)); // deadline_shed
    for w in pool.iter().take(2) {
        let _ = batcher.submit(w.clone()); // second one overflows the bound
    }
    let _ = batcher.flush();

    // Phase 2: threaded front with the default (shape-only) policy and
    // the result cache on, so NonFinite rejections, unknown models, and
    // cache hits all flow through the same books.
    let factory: ShardFactory = Arc::new(|_shard| {
        let (_m, plan, _pool) = fixture(30);
        Ok(vec![ShardModel {
            id: "m".into(),
            plan,
            tape_fallback: None,
            canary: None,
        }])
    });
    let cfg = FrontConfig {
        threads: 2,
        cache_bytes: 8 << 20,
        ..FrontConfig::default()
    };
    let mut front = ServeFront::new(cfg, factory).expect("front starts");
    for round in 0..4u64 {
        let burst = rng.gen_range(1..6);
        for _ in 0..burst {
            match rng.gen_range(0..4) {
                0 | 1 => {
                    // Healthy window; repeats across rounds hit the cache.
                    let w = &pool[rng.gen_range(0..2)];
                    let _ = front.submit_with("m", w.clone(), None, round);
                }
                2 => {
                    let mut nan = pool[0].clone();
                    nan.data_mut()[0] = f32::NAN;
                    let _ = front.submit("m", nan);
                }
                _ => {
                    let w = &pool[rng.gen_range(0..pool.len())];
                    let _ = front.submit("ghost", w.clone());
                }
            }
        }
        front.flush().expect("flush");
    }
    // Front-side top-ups: an unmaskable NaN, an unknown model, and a
    // guaranteed cache hit (same window, same origin, two flushes; the
    // origin is past every random-phase one so the entry cannot have
    // TTL-expired between the insert and the repeat).
    let mut nan = pool[0].clone();
    nan.data_mut()[0] = f32::NAN;
    let _ = front.submit("m", nan);
    let _ = front.submit("ghost", pool[0].clone());
    let _ = front.submit_with("m", pool[3].clone(), None, 10);
    front.flush().expect("flush");
    let _ = front.submit_with("m", pool[3].clone(), None, 10);
    front.flush().expect("flush");
    drop(front);

    let snap = counters::snapshot();
    // The sequence actually exercised every bucket it claims to balance.
    assert!(snap.admitted > 0, "no request was admitted");
    assert!(snap.rejected_shape > 0, "no shape rejection fired");
    assert!(snap.rejected_missing > 0, "no missing-cap rejection fired");
    assert!(snap.rejected_non_finite > 0, "no non-finite rejection fired");
    assert!(snap.queue_shed > 0, "the queue bound never shed");
    assert!(snap.deadline_shed > 0, "no deadline ever expired");
    assert!(snap.unknown_model > 0, "no unknown-model request fired");
    assert!(snap.cache_hit > 0, "no request ever hit the cache");
    // The books balance: every submitted request landed in exactly one
    // admission bucket, regardless of which layer handled it.
    assert_eq!(
        snap.submitted,
        snap.admitted
            + snap.rejected_shape
            + snap.rejected_non_finite
            + snap.rejected_missing
            + snap.queue_shed,
        "conservation invariant broken: {snap:?}"
    );
}
